// Package fleet is the datacenter-scale layer of the reproduction
// (DESIGN.md §15): N independent nodes, each wrapping one registered
// memory-controller backend as its cold compressed tier, a hot
// uncompressed tier fed by a promotion/demotion policy, and ballooning
// that turns compression headroom into reclaimable pages. The fleet
// rollup — aggregate compression ratio, tier churn, page-move traffic,
// energy and memory TCO — is where Compresso's "compression pays at
// scale" argument is evaluated.
//
// Determinism contract: a fleet run is a pure function of its Config.
// Nodes are independent cells fanned out via internal/parallel with
// index-ordered aggregation, so results are byte-identical at any
// Jobs value (DESIGN.md §7).
package fleet

import (
	"fmt"

	"compresso/internal/dram"
	"compresso/internal/energy"
	"compresso/internal/faults"
	"compresso/internal/memctl"
	"compresso/internal/metadata"
	"compresso/internal/obs"
	"compresso/internal/parallel"
	"compresso/internal/rng"
	"compresso/internal/workload"

	// Importing the backends is what makes their names resolvable from
	// NodeSpec.Backend (DESIGN.md §12).
	_ "compresso/internal/core"
	_ "compresso/internal/cram"
	_ "compresso/internal/cxl"
	_ "compresso/internal/dmc"
	_ "compresso/internal/lcp"
)

// hotLatency is the service latency of a hot-tier (uncompressed,
// near-memory) access in core cycles — no controller translation, no
// metadata, no decompression.
const hotLatency = 50

// opGap is the minimum core-clock advance between a node's operations
// (the instruction stream between memory references).
const opGap = 4

// Config parameterizes one fleet run.
type Config struct {
	// Nodes is the fleet roster, typically from Mix.
	Nodes []NodeSpec

	// Policy is the tier promotion/demotion contract applied on every
	// node.
	Policy Policy

	// Epochs is the number of policy epochs each node runs.
	Epochs int

	// OpsPerEpoch is the per-epoch operation budget of a weight-1.0
	// node; a node's actual budget is OpsPerEpoch x its Weight.
	OpsPerEpoch uint64

	// FootprintScale divides every node's benchmark footprint (the
	// experiment runners' speed knob; 1 for full fidelity).
	FootprintScale int

	// Jobs bounds the node-simulation worker goroutines (<= 0 means
	// GOMAXPROCS). Results are byte-identical for every value.
	Jobs int
}

// Validate checks the run shape and resolves every node's benchmark
// and backend before any simulation starts, so a misnamed node fails
// fast instead of panicking mid-fan-out.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("fleet: empty fleet")
	}
	if c.Epochs < 1 {
		return fmt.Errorf("fleet: %d epochs", c.Epochs)
	}
	if c.OpsPerEpoch < 1 {
		return fmt.Errorf("fleet: %d ops per epoch", c.OpsPerEpoch)
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	for _, spec := range c.Nodes {
		if _, err := workload.ByName(spec.Bench); err != nil {
			return fmt.Errorf("fleet node %d: %w", spec.ID, err)
		}
		if _, ok := memctl.LookupBackend(spec.Backend); !ok {
			return fmt.Errorf("fleet node %d: unknown backend %q (registered: %v)",
				spec.ID, spec.Backend, memctl.BackendNames())
		}
		if spec.Weight <= 0 {
			return fmt.Errorf("fleet node %d: non-positive weight %v", spec.ID, spec.Weight)
		}
	}
	return nil
}

// NodeResult is one node's outcome.
type NodeResult struct {
	ID      int
	Bench   string
	Backend string
	Weight  float64

	// FootprintPages is the node's (scaled) installed footprint.
	FootprintPages int

	// Ratio is the node's effective compression ratio: footprint over
	// machine bytes actually held (hot uncompressed + cold compressed +
	// metadata charge).
	Ratio float64

	// Tier traffic.
	HotHits    uint64 // ops served by the hot uncompressed tier
	ColdReads  uint64 // demand reads through the compressed controller
	ColdWrites uint64 // demand writes through the compressed controller

	// Policy activity.
	Promotions uint64 // cold->hot page moves
	Demotions  uint64 // hot->cold page moves
	MoveBytes  int64  // page bytes moved between tiers

	// HotPages is the hot tier's final population.
	HotPages int

	// BalloonPages is the node's reclaimable page count: budget bytes
	// (the uncompressed footprint provision) not needed by the tiers.
	BalloonPages int64

	// Cycles is the node's final core clock.
	Cycles uint64

	// EnergyNJ is the node's total energy (internal/energy model).
	EnergyNJ float64
}

// Ops returns the node's total demand operations.
func (n NodeResult) Ops() uint64 { return n.HotHits + n.ColdReads + n.ColdWrites }

// Result is a fleet run's outcome: per-node rows plus the rollup.
type Result struct {
	Policy string
	Nodes  []NodeResult

	// AggRatio is the fleet's effective compression ratio: total
	// installed footprint over total machine bytes held.
	AggRatio float64

	// HotHitRate is the fraction of fleet ops served by hot tiers.
	HotHitRate float64

	// ChurnPerKOp is tier moves (promotions + demotions) per thousand
	// operations — the policy-oscillation metric.
	ChurnPerKOp float64

	// MoveBytes is the fleet's total tier-move traffic.
	MoveBytes int64

	// BalloonPages is the fleet's total reclaimable page count.
	BalloonPages int64

	// EnergyNJ is the fleet's total energy.
	EnergyNJ float64

	// TCO rollup (energy.DefaultTCO, one month of the run's footprint):
	// MemoryDollars prices the bytes actually held, BalloonDollars the
	// capacity compression released, EnergyDollars the run's energy.
	MemoryDollars  float64
	BalloonDollars float64
	EnergyDollars  float64
}

// Registry exports the fleet rollup as fleet.* metrics (DESIGN.md §8).
func (r Result) Registry() *obs.Registry {
	reg := obs.NewRegistry()
	var hot, cold, moves uint64
	for _, n := range r.Nodes {
		hot += n.HotHits
		cold += n.ColdReads + n.ColdWrites
		moves += n.Promotions + n.Demotions
	}
	reg.Gauge("fleet.nodes").Set(float64(len(r.Nodes)))
	reg.Counter("fleet.hot_hits").Set(hot)
	reg.Counter("fleet.cold_ops").Set(cold)
	reg.Counter("fleet.tier_moves").Set(moves)
	reg.Counter("fleet.move_bytes").Set(uint64(r.MoveBytes))
	reg.Counter("fleet.balloon_pages").Set(uint64(r.BalloonPages))
	reg.Gauge("fleet.agg_ratio").Set(r.AggRatio)
	reg.Gauge("fleet.hot_hit_rate").Set(r.HotHitRate)
	reg.Gauge("fleet.churn_per_kop").Set(r.ChurnPerKOp)
	reg.Gauge("fleet.energy_nj").Set(r.EnergyNJ)
	reg.Gauge("fleet.tco_memory_dollars").Set(r.MemoryDollars)
	reg.Gauge("fleet.tco_balloon_dollars").Set(r.BalloonDollars)
	reg.Gauge("fleet.tco_energy_dollars").Set(r.EnergyDollars)
	return reg
}

// Run simulates the fleet: every node independently, fanned across
// cfg.Jobs workers, aggregated in node order.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nodes := parallel.Map(cfg.Jobs, len(cfg.Nodes), func(i int) NodeResult {
		return runNode(cfg.Nodes[i], cfg)
	})
	return aggregate(cfg, nodes), nil
}

// aggregate rolls node results up into the fleet Result. Every derived
// float guards its denominator: obs.Encode rejects non-finite values,
// and a degenerate fleet must still produce a valid artifact.
func aggregate(cfg Config, nodes []NodeResult) Result {
	res := Result{Policy: cfg.Policy.Name, Nodes: nodes}
	var footprint, used int64
	var ops, moves, hot uint64
	for _, n := range nodes {
		fp := int64(n.FootprintPages) * memctl.PageSize
		footprint += fp
		if n.Ratio > 0 {
			used += int64(float64(fp) / n.Ratio)
		}
		ops += n.Ops()
		moves += n.Promotions + n.Demotions
		hot += n.HotHits
		res.MoveBytes += n.MoveBytes
		res.BalloonPages += n.BalloonPages
		res.EnergyNJ += n.EnergyNJ
	}
	if used > 0 {
		res.AggRatio = float64(footprint) / float64(used)
	} else {
		res.AggRatio = 1
	}
	if ops > 0 {
		res.HotHitRate = float64(hot) / float64(ops)
		res.ChurnPerKOp = 1000 * float64(moves) / float64(ops)
	}
	tco := energy.DefaultTCO()
	res.MemoryDollars = tco.MemoryDollars(used, 1)
	res.BalloonDollars = tco.MemoryDollars(res.BalloonPages*memctl.PageSize, 1)
	res.EnergyDollars = tco.EnergyDollars(energy.Breakdown{DRAMDynamic: res.EnergyNJ})
	return res
}

// mdStatser is implemented by controllers with a metadata cache.
type mdStatser interface {
	MetadataCacheStats() metadata.CacheStats
}

// pageState tracks one page's tier membership and policy counters.
type pageState struct {
	hot  bool
	hits uint32 // accesses this epoch
	idle uint16 // consecutive fully idle epochs while hot
}

// runNode simulates one node: install the benchmark image into the
// backend controller (the cold tier), then run Epochs x (weighted
// OpsPerEpoch) zipf-distributed accesses with the policy applied at
// every epoch boundary. Config is pre-validated, so lookups cannot
// fail here.
func runNode(spec NodeSpec, cfg Config) NodeResult {
	prof, err := workload.ByName(spec.Bench)
	if err != nil {
		panic(err) // unreachable: Config.Validate resolved it
	}
	prof = workload.Scale(prof, cfg.FootprintScale)
	pages := prof.FootprintPages

	img := workload.NewImage(prof, spec.Seed)
	mem := dram.New(dram.DDR4_2666())
	b, _ := memctl.LookupBackend(spec.Backend)
	ctl := b.New(memctl.BuildParams{
		OSPAPages:      pages,
		MachineBytes:   b.MachineBytes(pages),
		FootprintScale: cfg.FootprintScale,
		Mem:            mem,
		Source:         img,
		Injector:       faults.New(faults.Config{}),
	})
	img.InstallInto(ctl)

	r := rng.New(spec.Seed)
	// Popularity is a fixed zipf ranking over a per-node page
	// permutation: the same pages stay hot across epochs (so hysteresis
	// has something to converge on) but which pages differs per node.
	perm := r.Perm(pages)
	theta := prof.ZipfTheta
	if theta <= 0 {
		theta = 0.8
	}
	z := rng.NewZipf(r, pages, theta)

	pol := cfg.Policy
	state := make([]pageState, pages)
	hotBudget := int(pol.HotFrac * float64(pages))
	hotPages := 0
	if pol.MaxMoveFrac == 0 {
		// Static policy: pre-seed the hot tier with the
		// popularity-ranked hottest pages; no churn afterwards.
		for i := 0; i < hotBudget; i++ {
			state[perm[i]].hot = true
			hotPages++
		}
	}

	res := NodeResult{
		ID: spec.ID, Bench: spec.Bench, Backend: spec.Backend,
		Weight: spec.Weight, FootprintPages: pages,
	}
	var now uint64
	ops := uint64(float64(cfg.OpsPerEpoch) * spec.Weight)
	scratch := make([]byte, memctl.LineBytes)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for op := uint64(0); op < ops; op++ {
			page := perm[z.Next()]
			line := uint64(page)*memctl.LinesPerPage + uint64(r.Intn(memctl.LinesPerPage))
			write := r.Bool(prof.WriteFrac)
			st := &state[page]
			if st.hits != ^uint32(0) {
				st.hits++
			}
			now += opGap
			if st.hot {
				res.HotHits++
				now += hotLatency
				continue
			}
			if write {
				res.ColdWrites++
				img.ReadLine(line, scratch)
				ctl.WriteLine(now, line, scratch)
			} else {
				res.ColdReads++
				done := ctl.ReadLine(now, line).Done
				if done > now {
					now = done
				}
			}
		}
		hotPages = applyPolicy(pol, state, ctl, img, scratch, &now, hotPages, hotBudget, &res)
	}
	res.HotPages = hotPages
	res.Cycles = now
	res.Ratio, res.BalloonPages = capacity(b, ctl, pages, hotPages)

	var mdAccesses uint64
	if ms, ok := ctl.(mdStatser); ok {
		mdAccesses = ms.MetadataCacheStats().Accesses()
	}
	res.EnergyNJ = energy.Default().Evaluate(energy.Inputs{
		Dram:            mem.Stats(),
		Mem:             ctl.Stats(),
		Cycles:          now,
		MDCacheAccesses: mdAccesses,
		Compressions:    energy.CompressionsEstimate(ctl.Stats()),
		Cores:           1,
	}).Total()
	return res
}

// applyPolicy runs one epoch boundary: demotions first (freeing
// budget), then promotions, both in page-index order so the walk is
// deterministic, both bounded by the epoch move cap. Returns the new
// hot population.
func applyPolicy(pol Policy, state []pageState, ctl memctl.Controller,
	img *workload.Image, scratch []byte, now *uint64,
	hotPages, hotBudget int, res *NodeResult) int {

	moveCap := int(pol.MaxMoveFrac * float64(len(state)))
	moves := 0
	for page := range state {
		st := &state[page]
		if !st.hot {
			continue
		}
		if st.hits > 0 {
			st.idle = 0
			continue
		}
		st.idle++
		if int(st.idle) >= pol.DemoteIdleEpochs && moves < moveCap {
			movePage(ctl, img, scratch, now, uint64(page), true)
			st.hot = false
			st.idle = 0
			hotPages--
			moves++
			res.Demotions++
			res.MoveBytes += memctl.PageSize
		}
	}
	for page := range state {
		st := &state[page]
		if st.hot || int(st.hits) < pol.PromoteHits || pol.PromoteHits == 0 {
			continue
		}
		if hotPages >= hotBudget || moves >= moveCap {
			break
		}
		movePage(ctl, img, scratch, now, uint64(page), false)
		st.hot = true
		st.idle = 0
		hotPages++
		moves++
		res.Promotions++
		res.MoveBytes += memctl.PageSize
	}
	for page := range state {
		state[page].hits = 0
	}
	return hotPages
}

// movePage charges one page's tier move through the controller: a
// demotion writes the page's lines back into the compressed tier
// (recompression and layout work), a promotion reads them out of it.
func movePage(ctl memctl.Controller, img *workload.Image, scratch []byte,
	now *uint64, page uint64, demote bool) {
	base := page * memctl.LinesPerPage
	for l := uint64(0); l < memctl.LinesPerPage; l++ {
		if demote {
			img.ReadLine(base+l, scratch)
			ctl.WriteLine(*now, base+l, scratch)
			*now += opGap
		} else {
			done := ctl.ReadLine(*now, base+l).Done
			if done > *now {
				*now = done
			}
		}
	}
}

// capacity computes the node's effective compression ratio and balloon
// headroom. The node's provision (budget) is its uncompressed
// footprint; what it actually holds is the hot pages verbatim, the
// cold pages at the controller's average compressed size, and the
// backend's metadata charge. The surplus is reclaimable as whole
// balloon pages.
func capacity(b memctl.Backend, ctl memctl.Controller, pages, hotPages int) (ratio float64, balloon int64) {
	footprint := int64(pages) * memctl.PageSize
	metaBytes := b.MachineBytes(pages) - memctl.BaselineMachineBytes(pages)
	avgComp := float64(ctl.CompressedBytes()) / float64(pages)
	used := int64(hotPages)*memctl.PageSize +
		int64(float64(pages-hotPages)*avgComp) + metaBytes
	if used <= 0 {
		return 1, 0
	}
	ratio = float64(footprint) / float64(used)
	if free := footprint - used; free > 0 {
		balloon = free / memctl.PageSize
	}
	return ratio, balloon
}
