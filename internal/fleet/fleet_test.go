package fleet

import (
	"math"
	"reflect"
	"testing"

	"compresso/internal/memctl"
)

// quickCfg is a small but real fleet: 16 nodes spanning the full
// headline backend set, tiny footprints, a few policy epochs.
func quickCfg(t *testing.T, policy string, jobs int) Config {
	t.Helper()
	pol, err := PolicyByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := Mix(16, []string{"compresso", "lcp", "cram", "cxl", "uncompressed"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Nodes:          nodes,
		Policy:         pol,
		Epochs:         3,
		OpsPerEpoch:    400,
		FootprintScale: 256,
		Jobs:           jobs,
	}
}

func TestMixDeterministicAndCoversBackends(t *testing.T) {
	backends := []string{"compresso", "lcp", "cram", "cxl"}
	a, err := Mix(16, backends, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mix(16, backends, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Mix is not deterministic for a fixed seed")
	}
	seen := map[string]bool{}
	for _, spec := range a {
		seen[spec.Backend] = true
		if spec.Weight <= 0 {
			t.Errorf("node %d: non-positive weight %v", spec.ID, spec.Weight)
		}
	}
	if len(seen) != len(backends) {
		t.Fatalf("16-node mix covers %d backends, want %d", len(seen), len(backends))
	}
	c, err := Mix(16, backends, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical mixes")
	}
}

func TestMixRejectsBadInput(t *testing.T) {
	if _, err := Mix(0, []string{"compresso"}, 1); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := Mix(4, nil, 1); err == nil {
		t.Error("no-backend mix accepted")
	}
	if _, err := Mix(4, []string{"no-such-backend"}, 1); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestRunDeterministicAcrossJobs pins the fleet determinism contract:
// the full Result — every node row and every rollup — is identical at
// Jobs 1 and Jobs 8.
func TestRunDeterministicAcrossJobs(t *testing.T) {
	serial, err := Run(quickCfg(t, "hysteresis", 1))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(quickCfg(t, "hysteresis", 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("fleet result differs across Jobs:\nserial %+v\nwide   %+v", serial, wide)
	}
}

// TestPolicyReplayDeterminism: the same config replayed yields the
// same tier decisions (promotion/demotion counts per node).
func TestPolicyReplayDeterminism(t *testing.T) {
	a, err := Run(quickCfg(t, "aggressive", 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(t, "aggressive", 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Promotions != y.Promotions || x.Demotions != y.Demotions || x.Cycles != y.Cycles {
			t.Fatalf("node %d replay diverged: %+v vs %+v", i, x, y)
		}
	}
}

func TestTierChurnFollowsPolicy(t *testing.T) {
	dyn, err := Run(quickCfg(t, "aggressive", 0))
	if err != nil {
		t.Fatal(err)
	}
	var moves uint64
	for _, n := range dyn.Nodes {
		moves += n.Promotions + n.Demotions
	}
	if moves == 0 {
		t.Error("aggressive policy produced no tier moves")
	}
	if dyn.ChurnPerKOp <= 0 || dyn.MoveBytes <= 0 {
		t.Errorf("churn rollup empty: churn=%v moveBytes=%d", dyn.ChurnPerKOp, dyn.MoveBytes)
	}

	static, err := Run(quickCfg(t, "static", 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range static.Nodes {
		if n.Promotions != 0 || n.Demotions != 0 {
			t.Fatalf("static policy moved pages on node %d: %+v", n.ID, n)
		}
		if n.HotPages == 0 {
			t.Errorf("static policy left node %d's hot tier unseeded", n.ID)
		}
	}
	if static.MoveBytes != 0 {
		t.Errorf("static fleet reports move traffic %d", static.MoveBytes)
	}
}

func TestCapacityAndBalloon(t *testing.T) {
	res, err := Run(quickCfg(t, "hysteresis", 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.AggRatio <= 1 {
		t.Errorf("fleet with compressing backends has aggregate ratio %v, want > 1", res.AggRatio)
	}
	var compBalloon int64
	for _, n := range res.Nodes {
		if n.Ratio < 0.99 {
			t.Errorf("node %d (%s) ratio %v < 1", n.ID, n.Backend, n.Ratio)
		}
		switch n.Backend {
		case "uncompressed", "cram":
			// Verbatim or in-place storage: nothing to reclaim.
			if n.BalloonPages != 0 {
				t.Errorf("%s node %d balloons %d pages", n.Backend, n.ID, n.BalloonPages)
			}
		case "compresso":
			compBalloon += n.BalloonPages
		}
	}
	if compBalloon == 0 {
		t.Error("no compresso node ballooned any capacity")
	}
	for _, v := range []float64{res.AggRatio, res.HotHitRate, res.ChurnPerKOp,
		res.EnergyNJ, res.MemoryDollars, res.BalloonDollars, res.EnergyDollars} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite rollup value %v in %+v", v, res)
		}
	}
	if res.EnergyNJ <= 0 || res.MemoryDollars <= 0 {
		t.Errorf("energy/TCO rollup empty: %+v", res)
	}
}

func TestHotTierServesTraffic(t *testing.T) {
	res, err := Run(quickCfg(t, "aggressive", 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.HotHitRate <= 0 {
		t.Fatalf("aggressive fleet hot-hit rate %v, want > 0", res.HotHitRate)
	}
	for _, n := range res.Nodes {
		budget := int(0.25 * float64(n.FootprintPages))
		if n.HotPages > budget {
			t.Errorf("node %d hot tier %d pages exceeds budget %d", n.ID, n.HotPages, budget)
		}
	}
}

func TestRegistryMetrics(t *testing.T) {
	res, err := Run(quickCfg(t, "hysteresis", 0))
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Registry().Snapshot()
	for _, name := range []string{"fleet.agg_ratio", "fleet.hot_hit_rate",
		"fleet.churn_per_kop", "fleet.energy_nj", "fleet.tco_memory_dollars"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing from fleet registry", name)
		}
	}
	for _, name := range []string{"fleet.hot_hits", "fleet.cold_ops",
		"fleet.tier_moves", "fleet.move_bytes", "fleet.balloon_pages"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s missing from fleet registry", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := quickCfg(t, "hysteresis", 1)
	bad := good
	bad.Nodes = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty fleet validated")
	}
	bad = good
	bad.Epochs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero epochs validated")
	}
	bad = good
	bad.Nodes = append([]NodeSpec(nil), good.Nodes...)
	bad.Nodes[0].Backend = "no-such"
	if err := bad.Validate(); err == nil {
		t.Error("unknown backend validated")
	}
	bad = good
	bad.Nodes = append([]NodeSpec(nil), good.Nodes...)
	bad.Nodes[0].Bench = "no-such"
	if err := bad.Validate(); err == nil {
		t.Error("unknown benchmark validated")
	}
	bad = good
	bad.Policy.HotFrac = 2
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range policy validated")
	}
}

func TestPoliciesWellFormed(t *testing.T) {
	if len(Policies()) < 3 {
		t.Fatalf("want >= 3 named policies, have %v", PolicyNames())
	}
	for _, p := range Policies() {
		if err := p.Validate(); err != nil {
			t.Errorf("registered policy invalid: %v", err)
		}
	}
	if _, err := PolicyByName("no-such"); err == nil {
		t.Error("unknown policy resolved")
	}
	if _, ok := memctl.LookupBackend("compresso"); !ok {
		t.Fatal("fleet package does not register the backends it names")
	}
}
