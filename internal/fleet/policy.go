package fleet

import (
	"fmt"
	"sort"
)

// Policy is a node's tier promotion/demotion contract (DESIGN.md §15):
// when a cold compressed page earns a hot uncompressed slot, when a hot
// page falls back to the compressed tier, how much of the node's
// footprint the hot tier may hold, and how much page movement one epoch
// may spend. The threshold + hysteresis shape follows the
// software-defined tiering literature (PAPERS.md, "Taming Server
// Memory TCO"): promotion needs sustained heat, demotion needs
// sustained idleness, and a per-epoch move cap damps oscillation.
type Policy struct {
	// Name is the identifier the CLI and experiments resolve.
	Name string

	// PromoteHits is the epoch access count at or above which a cold
	// page is promoted (subject to budget and the move cap).
	PromoteHits int

	// DemoteIdleEpochs is how many consecutive zero-access epochs a hot
	// page survives before demotion.
	DemoteIdleEpochs int

	// HotFrac is the hot tier's byte budget as a fraction of the node's
	// uncompressed footprint.
	HotFrac float64

	// MaxMoveFrac caps one epoch's page moves (promotions + demotions)
	// at this fraction of the footprint. Zero freezes the tiers: no
	// churn ever (the static baseline).
	MaxMoveFrac float64
}

// Validate checks the policy invariants the node loop relies on.
func (p Policy) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("fleet: unnamed policy")
	case p.PromoteHits < 0:
		return fmt.Errorf("fleet policy %s: negative promote threshold", p.Name)
	case p.DemoteIdleEpochs < 1:
		return fmt.Errorf("fleet policy %s: demote idle epochs %d < 1", p.Name, p.DemoteIdleEpochs)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("fleet policy %s: hot fraction %v outside [0,1]", p.Name, p.HotFrac)
	case p.MaxMoveFrac < 0 || p.MaxMoveFrac > 1:
		return fmt.Errorf("fleet policy %s: move fraction %v outside [0,1]", p.Name, p.MaxMoveFrac)
	}
	return nil
}

// The named policies.
var policies = map[string]Policy{
	// hysteresis is the default: promotion needs repeated heat within
	// one epoch, demotion needs two fully idle epochs, and at most 10%
	// of the footprint moves per epoch — the TCO-paper-style damped
	// tiering loop.
	"hysteresis": {Name: "hysteresis", PromoteHits: 3, DemoteIdleEpochs: 2,
		HotFrac: 0.25, MaxMoveFrac: 0.10},
	// aggressive promotes on first touch and demotes after one idle
	// epoch with a wide move cap: maximal responsiveness, maximal churn.
	"aggressive": {Name: "aggressive", PromoteHits: 1, DemoteIdleEpochs: 1,
		HotFrac: 0.25, MaxMoveFrac: 0.50},
	// static pre-seeds the hot tier with the popularity-ranked hottest
	// pages and never moves anything again (the no-churn baseline the
	// dynamic policies are judged against).
	"static": {Name: "static", PromoteHits: 1, DemoteIdleEpochs: 1,
		HotFrac: 0.25, MaxMoveFrac: 0},
}

// Policies returns the named policies sorted by name.
func Policies() []Policy {
	out := make([]Policy, 0, len(policies))
	for _, p := range policies {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PolicyNames returns the sorted policy names.
func PolicyNames() []string {
	names := make([]string, 0, len(policies))
	for n := range policies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyByName resolves a named policy.
func PolicyByName(name string) (Policy, error) {
	p, ok := policies[name]
	if !ok {
		return Policy{}, fmt.Errorf("fleet: unknown policy %q (have %v)", name, PolicyNames())
	}
	return p, nil
}
