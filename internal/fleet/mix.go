package fleet

import (
	"fmt"

	"compresso/internal/memctl"
	"compresso/internal/rng"
	"compresso/internal/workload"
)

// NodeSpec names one node of a fleet: which benchmark personality it
// serves, which registered memory-controller backend it runs, and how
// much load it carries relative to the fleet median.
type NodeSpec struct {
	// ID is the node's index in the fleet (stable across runs).
	ID int

	// Bench is the workload profile name (workload.ByName).
	Bench string

	// Backend is the registered memctl backend name.
	Backend string

	// Weight multiplies the node's per-epoch operation count: the
	// fleet-mix generator assigns popular services heavier nodes.
	Weight float64

	// Seed drives every stochastic choice the node makes.
	Seed uint64
}

// nodeSeedStride decorrelates per-node seeds (a prime, like the
// per-core 7919 stride in internal/sim).
const nodeSeedStride = 9973

// mixTheta is the service-popularity skew: at ~1.1 the head service
// lands on several times more nodes than the tail, the "millions of
// users concentrate on few services" shape datacenter traces report.
const mixTheta = 1.1

// Mix generates a deterministic fleet of n nodes over the workload
// catalog: service assignment is zipfian over the benchmark list
// (popular services recur on many nodes and carry heavier per-node
// load), and backends cycle through the given list so every backend is
// exercised. The same (n, backends, seed) triple always yields the
// same specs.
func Mix(n int, backends []string, seed uint64) ([]NodeSpec, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: mix of %d nodes", n)
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("fleet: mix with no backends")
	}
	for _, b := range backends {
		if _, ok := memctl.LookupBackend(b); !ok {
			return nil, fmt.Errorf("fleet: unknown backend %q (registered: %v)", b, memctl.BackendNames())
		}
	}
	services := workload.Names()
	r := rng.New(seed ^ 0xF1EE7)
	z := rng.NewZipf(r, len(services), mixTheta)
	specs := make([]NodeSpec, n)
	for i := range specs {
		svc := z.Next()
		specs[i] = NodeSpec{
			ID:      i,
			Bench:   services[svc],
			Backend: backends[i%len(backends)],
			// Popular services run hot: the head service's nodes carry
			// 5x the tail's operation rate.
			Weight: 1 + 4/float64(1+svc),
			Seed:   seed + uint64(i)*nodeSeedStride,
		}
	}
	return specs, nil
}
