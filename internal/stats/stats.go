// Package stats provides the small statistical and presentation
// helpers shared by the simulator and the experiment runners: geometric
// means, histograms, and fixed-width table rendering for reproducing
// the paper's tables and figure series as text.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs. Non-positive values are
// invalid for a geometric mean and cause a panic; callers compare
// relative performance numbers which are strictly positive. An empty
// slice has no geometric mean: it returns NaN, the package's "no
// meaningful value" marker, which Table.AddRow renders as "n/a".
// (Returning 0 here would render an empty column as a plausible
// "0.000" — a value this same function rejects as invalid input.)
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It reports false for empty input or a p outside
// [0, 100] (including NaN), mirroring obs.HistSnapshot.Percentile: an
// out-of-range p is a caller bug, and computing an array index from a
// NaN position is implementation-defined.
func Percentile(xs []float64, p float64) (float64, bool) {
	if !(p >= 0 && p <= 100) {
		return 0, false
	}
	if len(xs) == 0 {
		return 0, false
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p == 0 {
		return s[0], true
	}
	if p == 100 {
		return s[len(s)-1], true
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo], true
	}
	return s[lo]*(1-frac) + s[lo+1]*frac, true
}

// Histogram counts values into named integer buckets.
type Histogram struct {
	counts map[int]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Add increments the count for bucket b.
func (h *Histogram) Add(b int) {
	h.counts[b]++
	h.total++
}

// Count returns the count in bucket b.
func (h *Histogram) Count(b int) uint64 { return h.counts[b] }

// Total returns the total number of samples.
func (h *Histogram) Total() uint64 { return h.total }

// Frac returns the fraction of samples in bucket b.
func (h *Histogram) Frac(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[b]) / float64(h.total)
}

// Buckets returns the populated buckets in ascending order.
func (h *Histogram) Buckets() []int {
	out := make([]int, 0, len(h.counts))
	for b := range h.counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Table accumulates rows and renders them with aligned columns, used by
// the experiment runners to print the paper's tables and per-benchmark
// figure series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells may be any fmt-able values. A NaN float
// renders as "n/a": it is the "no meaningful value" marker (e.g. the
// metadata-cache hit rate of an uncompressed run).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) {
				row[i] = "n/a"
			} else {
				row[i] = fmt.Sprintf("%.3f", v)
			}
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
