package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 2, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Geomean(1,2,4) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) != 0")
	}
	got = Geomean([]float64{0.5, 2})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Geomean(0.5,2) = %v, want 1", got)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero value")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile sorted caller's slice")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(512)
	h.Add(512)
	h.Add(4096)
	if h.Total() != 3 || h.Count(512) != 2 || h.Count(1024) != 0 {
		t.Fatalf("histogram counts wrong: %v", h)
	}
	if h.Frac(512) != 2.0/3 {
		t.Errorf("Frac = %v", h.Frac(512))
	}
	if b := h.Buckets(); len(b) != 2 || b[0] != 512 || b[1] != 4096 {
		t.Errorf("Buckets = %v", b)
	}
	empty := NewHistogram()
	if empty.Frac(1) != 0 {
		t.Error("empty Frac != 0")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("bench", "ratio")
	tbl.AddRow("gcc", 1.85)
	tbl.AddRow("mcf", 1.0)
	out := tbl.String()
	if !strings.Contains(out, "bench") || !strings.Contains(out, "1.850") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines (header, sep, 2 rows), got %d:\n%s", len(lines), out)
	}
	// Columns align: both data rows start the ratio column at the same
	// byte offset.
	idx1 := strings.Index(lines[2], "1.850")
	idx2 := strings.Index(lines[3], "1.000")
	if idx1 != idx2 {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableMixedTypes(t *testing.T) {
	tbl := NewTable("a", "b", "c")
	tbl.AddRow(1, "x", 2.5)
	if !strings.Contains(tbl.String(), "2.500") {
		t.Error("float not formatted")
	}
}

func TestTableRendersNaNAsNA(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.AddRow("row", math.NaN())
	if !strings.Contains(tbl.String(), "n/a") {
		t.Errorf("NaN cell not rendered as n/a:\n%s", tbl.String())
	}
}

func TestPercentileEmptyInput(t *testing.T) {
	for _, p := range []float64{-1, 0, 50, 100, 200} {
		if got := Percentile(nil, p); got != 0 {
			t.Errorf("Percentile(nil, %v) = %v, want 0", p, got)
		}
	}
	// Single element: every percentile is that element.
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("Percentile([7], 50) = %v", got)
	}
}

func TestHistogramEmptyEdges(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Count(3) != 0 {
		t.Fatal("empty histogram has samples")
	}
	if got := h.Frac(3); got != 0 {
		t.Errorf("empty Frac = %v, want 0 (not NaN)", got)
	}
	if b := h.Buckets(); len(b) != 0 {
		t.Errorf("empty Buckets = %v", b)
	}
}
