package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 2, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Geomean(1,2,4) = %v, want 2", got)
	}
	got = Geomean([]float64{0.5, 2})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Geomean(0.5,2) = %v, want 1", got)
	}
}

// TestGeomeanEmptyIsNaN pins the empty-slice contract. Pre-fix,
// Geomean(nil) returned 0 — a value the same function panics on as
// invalid *input* — so an empty backend column rendered as a
// legitimate-looking "0.000" geomean. Now it returns NaN, the
// package-wide "no meaningful value" marker, which Table renders as
// "n/a".
func TestGeomeanEmptyIsNaN(t *testing.T) {
	if got := Geomean(nil); !math.IsNaN(got) {
		t.Errorf("Geomean(nil) = %v, want NaN", got)
	}
	if got := Geomean([]float64{}); !math.IsNaN(got) {
		t.Errorf("Geomean(empty) = %v, want NaN", got)
	}
	tbl := NewTable("col", "geomean")
	tbl.AddRow("empty", Geomean(nil))
	if !strings.Contains(tbl.String(), "n/a") {
		t.Errorf("empty-column geomean renders as a number, want n/a:\n%s", tbl.String())
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero value")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, tc := range cases {
		got, ok := Percentile(xs, tc.p)
		if !ok || math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v,%v, want %v,true", tc.p, got, ok, tc.want)
		}
	}
	if got, ok := Percentile(nil, 50); ok || got != 0 {
		t.Errorf("Percentile(nil, 50) = %v,%v, want 0,false", got, ok)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile sorted caller's slice")
	}
}

// TestPercentileRejectsBadP pins the p-validation contract, mirroring
// the obs-side HistSnapshot.Percentile fix: p outside [0, 100] —
// including NaN — reports false instead of computing an index from it.
// Pre-fix, `pos := p/100*float64(len(s)-1)` with NaN p fed int(pos)
// an implementation-defined conversion (a potential out-of-bounds
// index); a negative p silently clamped to the minimum.
func TestPercentileRejectsBadP(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for _, p := range []float64{math.NaN(), -1, -0.001, 100.001, 200,
		math.Inf(1), math.Inf(-1)} {
		if got, ok := Percentile(xs, p); ok || got != 0 {
			t.Errorf("Percentile(xs, %v) = %v,%v, want 0,false", p, got, ok)
		}
	}
	for _, p := range []float64{0, 50, 100} {
		if _, ok := Percentile(xs, p); !ok {
			t.Errorf("Percentile(xs, %v) not ok, want valid", p)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(512)
	h.Add(512)
	h.Add(4096)
	if h.Total() != 3 || h.Count(512) != 2 || h.Count(1024) != 0 {
		t.Fatalf("histogram counts wrong: %v", h)
	}
	if h.Frac(512) != 2.0/3 {
		t.Errorf("Frac = %v", h.Frac(512))
	}
	if b := h.Buckets(); len(b) != 2 || b[0] != 512 || b[1] != 4096 {
		t.Errorf("Buckets = %v", b)
	}
	empty := NewHistogram()
	if empty.Frac(1) != 0 {
		t.Error("empty Frac != 0")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("bench", "ratio")
	tbl.AddRow("gcc", 1.85)
	tbl.AddRow("mcf", 1.0)
	out := tbl.String()
	if !strings.Contains(out, "bench") || !strings.Contains(out, "1.850") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines (header, sep, 2 rows), got %d:\n%s", len(lines), out)
	}
	// Columns align: both data rows start the ratio column at the same
	// byte offset.
	idx1 := strings.Index(lines[2], "1.850")
	idx2 := strings.Index(lines[3], "1.000")
	if idx1 != idx2 {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableMixedTypes(t *testing.T) {
	tbl := NewTable("a", "b", "c")
	tbl.AddRow(1, "x", 2.5)
	if !strings.Contains(tbl.String(), "2.500") {
		t.Error("float not formatted")
	}
}

func TestTableRendersNaNAsNA(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.AddRow("row", math.NaN())
	if !strings.Contains(tbl.String(), "n/a") {
		t.Errorf("NaN cell not rendered as n/a:\n%s", tbl.String())
	}
}

func TestPercentileEmptyInput(t *testing.T) {
	for _, p := range []float64{-1, 0, 50, 100, 200} {
		if got, ok := Percentile(nil, p); ok || got != 0 {
			t.Errorf("Percentile(nil, %v) = %v,%v, want 0,false", p, got, ok)
		}
	}
	// Single element: every percentile is that element.
	if got, ok := Percentile([]float64{7}, 50); !ok || got != 7 {
		t.Errorf("Percentile([7], 50) = %v,%v", got, ok)
	}
}

func TestHistogramEmptyEdges(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Count(3) != 0 {
		t.Fatal("empty histogram has samples")
	}
	if got := h.Frac(3); got != 0 {
		t.Errorf("empty Frac = %v, want 0 (not NaN)", got)
	}
	if b := h.Buckets(); len(b) != 0 {
		t.Errorf("empty Buckets = %v", b)
	}
}
