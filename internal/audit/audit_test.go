package audit

import (
	"strings"
	"testing"
)

// fakeTarget counts audits and serves a scripted report per call.
type fakeTarget struct {
	calls   []Scope
	repairs []bool
	reports []Report
}

func (f *fakeTarget) Audit(scope Scope, repair bool) Report {
	f.calls = append(f.calls, scope)
	f.repairs = append(f.repairs, repair)
	if len(f.reports) == 0 {
		return Report{Scope: scope}
	}
	rep := f.reports[0]
	f.reports = f.reports[1:]
	rep.Scope = scope
	return rep
}

func TestRunnerCadence(t *testing.T) {
	ft := &fakeTarget{}
	r := NewRunner(ft, 100)
	for i := 0; i < 1000; i++ {
		r.Tick()
	}
	if len(ft.calls) != 10 {
		t.Fatalf("%d audits over 1000 ticks at every=100", len(ft.calls))
	}
	for i, s := range ft.calls {
		if s != Structural || !ft.repairs[i] {
			t.Fatalf("tick audit %d: scope %v repair %v", i, s, ft.repairs[i])
		}
	}
	r.Final(Full)
	if got := ft.calls[len(ft.calls)-1]; got != Full {
		t.Fatalf("final audit scope %v", got)
	}
	if out := r.Outcome(); out.Runs != 11 || out.Violations != 0 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestRunnerZeroEveryAuditsEachOp(t *testing.T) {
	ft := &fakeTarget{}
	r := NewRunner(ft, 0)
	for i := 0; i < 5; i++ {
		r.Tick()
	}
	if len(ft.calls) != 5 {
		t.Fatalf("%d audits, want one per tick", len(ft.calls))
	}
}

func TestRunnerAccumulatesAndBoundsDirty(t *testing.T) {
	ft := &fakeTarget{}
	bad := Report{Violations: []Violation{
		{Kind: ChunkLeak, Page: NoPage, Detail: "x", Repaired: true},
		{Kind: SizeShadow, Page: 3, Detail: "y"},
	}}
	for i := 0; i < maxDirtyReports+5; i++ {
		ft.reports = append(ft.reports, bad)
	}
	r := NewRunner(ft, 1)
	for i := 0; i < maxDirtyReports+5; i++ {
		r.Tick()
	}
	out := r.Outcome()
	want := uint64(maxDirtyReports + 5)
	if out.Runs != want || out.Violations != 2*want || out.Repaired != want {
		t.Fatalf("outcome %+v", out)
	}
	if len(r.Dirty) != maxDirtyReports {
		t.Fatalf("retained %d dirty reports, want cap %d", len(r.Dirty), maxDirtyReports)
	}
}

func TestReportStrings(t *testing.T) {
	clean := Report{Scope: Full, Ops: 42, Pages: 7}
	if !clean.OK() || !strings.Contains(clean.String(), "clean") {
		t.Fatalf("clean report: %q", clean.String())
	}
	dirty := Report{Violations: []Violation{
		{Kind: DataCorruption, Page: 9, Detail: "line 3 diverged", Repaired: true},
		{Kind: ValidCountDrift, Page: NoPage, Detail: "off by one"},
	}}
	s := dirty.String()
	for _, want := range []string{"2 violations", "1 repaired", "data-corruption @ page 9", "[repaired]", "valid-count-drift @ global"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
	// Long reports truncate.
	var many Report
	for i := 0; i < 12; i++ {
		many.Violations = append(many.Violations, Violation{Kind: ChunkLeak, Page: NoPage})
	}
	if !strings.Contains(many.String(), "... 4 more") {
		t.Fatalf("no truncation: %q", many.String())
	}
}

func TestKindAndScopeNames(t *testing.T) {
	if Structural.String() != "structural" || Full.String() != "full" {
		t.Fatal("scope names")
	}
	for k := AllocMismatch; k <= ValidCountDrift; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind")
	}
}
