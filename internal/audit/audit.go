// Package audit defines the state-auditing contract for the Compresso
// controller stack: structured invariant-violation reports, the
// Auditable interface compressed controllers implement, and a Runner
// that triggers audits on a fixed demand-access cadence.
//
// The auditor exists because the whole value proposition of main
// memory compression rests on the controller never corrupting data
// while it relocates lines, repacks pages and balloons under pressure.
// Rather than panicking on drift (which turns an injected single-bit
// fault into a dead simulator), audits return Reports; the controller
// repairs what it can from the authoritative data and degrades to an
// uncompressed layout when it cannot.
package audit

import (
	"fmt"
	"strings"

	"compresso/internal/obs"
)

// Scope selects how deep an audit digs.
type Scope int

const (
	// Structural cross-checks the controller's bookkeeping: allocator
	// occupancy vs per-page allocations, metadata entries vs their
	// shadow state, packed backing round-trips, known-corrupt lines.
	// Cheap enough to run every few thousand accesses.
	Structural Scope = iota
	// Full additionally round-trips every stored line through the
	// codec against the authoritative LineSource. Only meaningful when
	// no dirty lines are outstanding above the controller (unit and
	// fuzz tests; the cycle simulator's caches hold newer data).
	Full
)

// String names the scope.
func (s Scope) String() string {
	if s == Full {
		return "full"
	}
	return "structural"
}

// Kind classifies one invariant violation.
type Kind int

const (
	// AllocMismatch: a page's metadata entry disagrees with the
	// controller's authoritative per-page allocation count.
	AllocMismatch Kind = iota
	// ChunkLeak: the allocator holds a chunk no page owns.
	ChunkLeak
	// ChunkPhantom: a page references a chunk the allocator considers
	// free (a double-free or torn allocation).
	ChunkPhantom
	// ChunkConflict: one chunk is referenced twice (within or across
	// pages).
	ChunkConflict
	// SizeShadow: a line's recorded slot code disagrees with the
	// exact compressed-size shadow in an impossible direction.
	SizeShadow
	// FreeSpaceDrift: the entry's FreeSpace field differs from the
	// recomputed reclaimable-byte count.
	FreeSpaceDrift
	// InflatedBad: the inflation-room pointer list is malformed or
	// overruns the page's allocation.
	InflatedBad
	// BackingMismatch: the packed 64-byte backing image no longer
	// round-trips the live entry of a clean page.
	BackingMismatch
	// DataCorruption: a stored line no longer matches the
	// authoritative LineSource image.
	DataCorruption
	// ValidCountDrift: the controller's valid-page counter disagrees
	// with a scan.
	ValidCountDrift
)

var kindNames = map[Kind]string{
	AllocMismatch:   "alloc-mismatch",
	ChunkLeak:       "chunk-leak",
	ChunkPhantom:    "chunk-phantom",
	ChunkConflict:   "chunk-conflict",
	SizeShadow:      "size-shadow",
	FreeSpaceDrift:  "free-space-drift",
	InflatedBad:     "inflated-bad",
	BackingMismatch: "backing-mismatch",
	DataCorruption:  "data-corruption",
	ValidCountDrift: "valid-count-drift",
}

// String names the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NoPage marks a violation not attributable to one OSPA page.
const NoPage = ^uint64(0)

// Violation is one detected invariant breach.
type Violation struct {
	Kind   Kind
	Page   uint64 // NoPage for global violations
	Detail string
	// Repaired reports whether the audit's repair pass resolved it.
	Repaired bool
}

// String renders the violation for logs.
func (v Violation) String() string {
	where := "global"
	if v.Page != NoPage {
		where = fmt.Sprintf("page %d", v.Page)
	}
	state := ""
	if v.Repaired {
		state = " [repaired]"
	}
	return fmt.Sprintf("%s @ %s: %s%s", v.Kind, where, v.Detail, state)
}

// Report is one audit's outcome.
type Report struct {
	Scope Scope
	// Ops is the controller's demand-access count when the audit ran.
	Ops uint64
	// Pages is the number of OSPA pages scanned.
	Pages      int
	Violations []Violation
}

// OK reports a clean audit.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Repaired counts violations the repair pass resolved.
func (r Report) Repaired() int {
	n := 0
	for _, v := range r.Violations {
		if v.Repaired {
			n++
		}
	}
	return n
}

// String renders a compact summary plus the first few violations.
func (r Report) String() string {
	if r.OK() {
		return fmt.Sprintf("audit(%s) @ %d ops: clean (%d pages)", r.Scope, r.Ops, r.Pages)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit(%s) @ %d ops: %d violations (%d repaired)",
		r.Scope, r.Ops, len(r.Violations), r.Repaired())
	for i, v := range r.Violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... %d more", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v.String())
	}
	return b.String()
}

// Auditable is implemented by controllers that can cross-check and
// repair their own state. With repair set, detected corruption is
// fixed in place (pages rebuilt from the authoritative data, leaked
// chunks released) and the returned violations are marked Repaired.
type Auditable interface {
	Audit(scope Scope, repair bool) Report
}

// Outcome accumulates a run's audit activity (reported in sim results).
type Outcome struct {
	Runs       uint64
	Violations uint64
	Repaired   uint64
}

// String renders the outcome.
func (o Outcome) String() string {
	return fmt.Sprintf("%d audits: %d violations, %d repaired", o.Runs, o.Violations, o.Repaired)
}

// Register records the tallies into r under prefix (canonically
// "audit").
func (o Outcome) Register(r *obs.Registry, prefix string) {
	r.AddStruct(prefix, o)
}

// Runner triggers repairing structural audits every fixed number of
// demand operations, accumulating an Outcome and keeping the first
// few non-clean reports for diagnosis.
type Runner struct {
	target Auditable
	every  uint64
	since  uint64

	outcome Outcome
	// Dirty holds the first non-clean reports (bounded).
	Dirty []Report
}

// maxDirtyReports bounds the retained non-clean reports.
const maxDirtyReports = 16

// NewRunner builds a runner auditing target every `every` operations.
func NewRunner(target Auditable, every uint64) *Runner {
	if every == 0 {
		every = 1
	}
	return &Runner{target: target, every: every}
}

// Tick advances one demand operation, auditing (with repair) when
// due, and returns the report of the audit that ran (nil otherwise) so
// callers can timestamp an audit-run trace event.
func (r *Runner) Tick() *Report {
	r.since++
	if r.since < r.every {
		return nil
	}
	r.since = 0
	rep := r.target.Audit(Structural, true)
	r.note(rep)
	return &rep
}

// Final runs the end-of-run audit at the given scope (with repair) and
// returns its report.
func (r *Runner) Final(scope Scope) Report {
	rep := r.target.Audit(scope, true)
	r.note(rep)
	return rep
}

func (r *Runner) note(rep Report) {
	r.outcome.Runs++
	r.outcome.Violations += uint64(len(rep.Violations))
	r.outcome.Repaired += uint64(rep.Repaired())
	if !rep.OK() && len(r.Dirty) < maxDirtyReports {
		r.Dirty = append(r.Dirty, rep)
	}
}

// Outcome returns the accumulated tallies.
func (r *Runner) Outcome() Outcome { return r.outcome }
