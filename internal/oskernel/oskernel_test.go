package oskernel

import (
	"testing"

	"compresso/internal/rng"
)

func TestPagerBasics(t *testing.T) {
	p := NewPager(2 * 4096) // 2 pages
	if !p.Touch(1) {
		t.Fatal("cold touch did not fault")
	}
	if p.Touch(1) {
		t.Fatal("hot touch faulted")
	}
	p.Touch(2)
	p.Touch(3) // evicts LRU (1)
	if p.Resident() != 2 {
		t.Fatalf("resident %d", p.Resident())
	}
	if !p.Touch(1) {
		t.Fatal("evicted page did not fault")
	}
	if p.Faults() != 4 || p.Touches() != 5 {
		t.Fatalf("faults %d touches %d", p.Faults(), p.Touches())
	}
}

func TestPagerLRUOrder(t *testing.T) {
	p := NewPager(2 * 4096)
	p.Touch(1)
	p.Touch(2)
	p.Touch(1) // 2 becomes LRU
	p.Touch(3) // evicts 2
	if p.Touch(1) {
		t.Fatal("MRU page evicted")
	}
	if !p.Touch(2) {
		t.Fatal("LRU page survived")
	}
}

func TestPagerUnconstrained(t *testing.T) {
	p := NewPager(-1)
	for i := uint64(0); i < 10000; i++ {
		p.Touch(i)
	}
	if p.Faults() != 10000 || p.Resident() != 10000 {
		t.Fatalf("faults %d resident %d", p.Faults(), p.Resident())
	}
	// Re-touching never faults: nothing is ever evicted.
	for i := uint64(0); i < 10000; i++ {
		if p.Touch(i) {
			t.Fatal("unconstrained pager evicted")
		}
	}
}

func TestPagerSetBudgetShrinks(t *testing.T) {
	p := NewPager(10 * 4096)
	for i := uint64(0); i < 10; i++ {
		p.Touch(i)
	}
	p.SetBudget(3 * 4096)
	if p.Resident() != 3 {
		t.Fatalf("resident %d after shrink", p.Resident())
	}
	if p.Budget() != 3*4096 {
		t.Fatalf("budget %d", p.Budget())
	}
}

func TestPagerFaultRateDropsWithBudget(t *testing.T) {
	run := func(pages int64) float64 {
		p := NewPager(pages * 4096)
		r := rng.New(1)
		z := rng.NewZipf(r, 100, 0.8)
		for i := 0; i < 50000; i++ {
			p.Touch(uint64(z.Next()))
		}
		return p.FaultRate()
	}
	small := run(10)
	big := run(60)
	if big >= small {
		t.Fatalf("fault rate %v at 60 pages >= %v at 10 pages", big, small)
	}
	if small == 0 {
		t.Fatal("no faults under a tight budget")
	}
}

// fakeCtl implements Discarder.
type fakeCtl struct {
	free      int
	discarded []uint64
}

func (f *fakeCtl) Discard(page uint64) {
	f.discarded = append(f.discarded, page)
	f.free += 2 // each page frees two chunks
}
func (f *fakeCtl) FreeMachineChunks() int { return f.free }

func TestBalloonReclaimsColdest(t *testing.T) {
	ctl := &fakeCtl{}
	b := NewBalloon(ctl, 4)
	for i := uint64(0); i < 10; i++ {
		b.Note(i)
	}
	b.Note(0) // page 0 is hot again; page 1 is now coldest
	if !b.OnPressure(1) {
		t.Fatal("pressure freed nothing")
	}
	if ctl.free < 4 {
		t.Fatalf("free %d below watermark", ctl.free)
	}
	if len(ctl.discarded) == 0 || ctl.discarded[0] != 1 {
		t.Fatalf("discarded %v, want coldest (1) first", ctl.discarded)
	}
	for _, d := range ctl.discarded {
		if d == 0 {
			t.Fatal("balloon reclaimed the hottest page")
		}
	}
	if b.Reclaimed() != uint64(len(ctl.discarded)) {
		t.Fatal("reclaim count mismatch")
	}
	if b.ReclaimCost() == 0 {
		t.Fatal("no reclaim cost modeled")
	}
}

func TestBalloonNothingToFree(t *testing.T) {
	ctl := &fakeCtl{}
	b := NewBalloon(ctl, 4)
	if b.OnPressure(1) {
		t.Fatal("empty balloon claimed success")
	}
	if b.PressureEvents() != 1 {
		t.Fatal("pressure not counted")
	}
}

func TestBalloonForget(t *testing.T) {
	ctl := &fakeCtl{}
	b := NewBalloon(ctl, 100)
	b.Note(1)
	b.Note(2)
	b.Forget(1)
	b.OnPressure(1)
	for _, d := range ctl.discarded {
		if d == 1 {
			t.Fatal("forgotten page reclaimed")
		}
	}
}
