package oskernel_test

import (
	"testing"

	"compresso/internal/core"
	"compresso/internal/datagen"
	"compresso/internal/dram"
	"compresso/internal/memctl"
	"compresso/internal/metadata"
	"compresso/internal/oskernel"
	"compresso/internal/rng"
)

// image is a minimal line source for the integration test.
type image map[uint64][]byte

func (im image) ReadLine(addr uint64, buf []byte) {
	if l, ok := im[addr]; ok {
		copy(buf, l)
		return
	}
	for i := range buf {
		buf[i] = 0
	}
}

// TestBallooningKeepsOSTransparent is the §V-B end-to-end scenario: an
// OSPA space twice the machine memory fills up with data that turns
// incompressible; the balloon driver reclaims cold pages through the
// pressure callback so the controller never fails an allocation —
// without the OS ever knowing about compression.
func TestBallooningKeepsOSTransparent(t *testing.T) {
	im := image{}
	const ospaPages = 128
	// Machine memory: metadata + 64 data chunks = half the OSPA space.
	machine := int64(ospaPages)*metadata.EntrySize + 64*512

	mem := dram.New(dram.DDR4_2666())
	cfg := core.DefaultConfig(ospaPages, machine)
	var ctl *core.Controller
	var balloon *oskernel.Balloon
	cfg.OnMemoryPressure = func(need int) bool { return balloon.OnPressure(need) }
	ctl = core.New(cfg, mem, im)
	balloon = oskernel.NewBalloon(ctl, 4)

	r := rng.New(42)
	now := uint64(0)
	write := func(addr uint64, data []byte) {
		cp := make([]byte, len(data))
		copy(cp, data)
		im[addr] = cp
		ctl.WriteLine(now, addr, cp)
		balloon.Note(addr / metadata.LinesPerPage)
		now += 500
	}

	// Fill part of the OSPA space with compressible data (48 pages at
	// one 512 B chunk each fits the 64-chunk machine), then stream
	// incompressible data over half of it (needs up to 8 chunks per
	// page: does not fit).
	for p := uint64(0); p < 48; p++ {
		for l := uint64(0); l < 64; l += 8 {
			write(p*64+l, datagen.Line(r, datagen.Seq))
		}
	}
	if balloon.Reclaimed() != 0 {
		t.Fatalf("compressible fill already ballooned %d pages", balloon.Reclaimed())
	}
	for p := uint64(24); p < 48; p++ {
		for l := uint64(0); l < 64; l++ {
			write(p*64+l, datagen.Line(r, datagen.Random))
		}
	}

	if balloon.PressureEvents() == 0 || balloon.Reclaimed() == 0 {
		t.Fatalf("no ballooning despite overcommit: %d events, %d reclaimed",
			balloon.PressureEvents(), balloon.Reclaimed())
	}
	if ctl.FreeMachineChunks() < 0 {
		t.Fatal("allocator inconsistent")
	}
	// The machine never held more than its capacity.
	if ctl.CompressedBytes() > 64*512 {
		t.Fatalf("compressed bytes %d exceed machine data capacity", ctl.CompressedBytes())
	}
	// Reclaimed (cold) pages read back as zero (the OS swapped them
	// out; a fresh touch is a zero page) without crashing.
	st := ctl.Stats()
	for p := uint64(0); p < 48; p++ {
		ctl.ReadLine(now, p*64)
		now += 100
	}
	if ctl.Stats().DemandReads != st.DemandReads+48 {
		t.Fatal("reads after ballooning miscounted")
	}
	t.Logf("ballooned %d pages over %d pressure events (cost %d cycles)",
		balloon.Reclaimed(), balloon.PressureEvents(), balloon.ReclaimCost())
}

// TestBalloonWithPagerConsistency drives a pager and balloon over the
// same access stream and checks their views stay consistent.
func TestBalloonWithPagerConsistency(t *testing.T) {
	pager := oskernel.NewPager(32 * memctl.PageSize)
	r := rng.New(7)
	z := rng.NewZipf(r, 128, 0.7)
	for i := 0; i < 20000; i++ {
		pager.Touch(uint64(z.Next()))
	}
	if pager.Resident() != 32 {
		t.Fatalf("resident %d, want full budget occupancy", pager.Resident())
	}
	if pager.FaultRate() <= 0 || pager.FaultRate() >= 1 {
		t.Fatalf("fault rate %v", pager.FaultRate())
	}
}
