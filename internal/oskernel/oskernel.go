// Package oskernel models the two operating-system behaviours the
// paper's evaluation depends on, without making the OS
// compression-aware:
//
//   - Pager: page-granular LRU paging under a byte budget — the
//     mechanism behind the memory-capacity impact evaluation (§VI-A's
//     cgroups-constrained runs). Every page touch either hits the
//     resident set or faults and evicts the LRU page.
//   - Balloon: the §V-B ballooning driver. When the hardware runs out
//     of machine memory, the Compresso driver inflates, the guest OS
//     surrenders its coldest pages, and the hardware marks them
//     invalid — keeping the OS fully compression-unaware.
package oskernel

import (
	"container/list"

	"compresso/internal/memctl"
)

// Pager is an LRU paging model over 4 KB pages with a byte budget.
type Pager struct {
	budget int64 // bytes; <0 means unconstrained
	lru    *list.List
	pages  map[uint64]*list.Element

	touches uint64
	faults  uint64
}

// NewPager creates a pager with the given budget in bytes
// (negative = unconstrained).
func NewPager(budgetBytes int64) *Pager {
	return &Pager{
		budget: budgetBytes,
		lru:    list.New(),
		pages:  make(map[uint64]*list.Element),
	}
}

// SetBudget changes the budget (the paper's dynamic cgroups
// adjustment); shrinking evicts immediately.
func (p *Pager) SetBudget(bytes int64) {
	p.budget = bytes
	p.evictToBudget()
}

// Budget returns the current budget.
func (p *Pager) Budget() int64 { return p.budget }

func (p *Pager) residentBytes() int64 {
	return int64(p.lru.Len()) * memctl.PageSize
}

func (p *Pager) evictToBudget() {
	if p.budget < 0 {
		return
	}
	for p.residentBytes() > p.budget && p.lru.Len() > 0 {
		back := p.lru.Back()
		delete(p.pages, back.Value.(uint64))
		p.lru.Remove(back)
	}
}

// Touch records an access to page, returning whether it faulted
// (was not resident).
func (p *Pager) Touch(page uint64) bool {
	p.touches++
	if el, ok := p.pages[page]; ok {
		p.lru.MoveToFront(el)
		return false
	}
	p.faults++
	p.pages[page] = p.lru.PushFront(page)
	p.evictToBudget()
	return true
}

// Faults returns the fault count.
func (p *Pager) Faults() uint64 { return p.faults }

// Touches returns the touch count.
func (p *Pager) Touches() uint64 { return p.touches }

// Resident returns the resident page count.
func (p *Pager) Resident() int { return p.lru.Len() }

// FaultRate returns faults per touch.
func (p *Pager) FaultRate() float64 {
	if p.touches == 0 {
		return 0
	}
	return float64(p.faults) / float64(p.touches)
}

// Discarder is the controller-side hook a balloon reclaims through
// (implemented by both the Compresso and LCP controllers).
type Discarder interface {
	Discard(page uint64)
	FreeMachineChunks() int
}

// Balloon is the §V-B driver model: it tracks page temperature via the
// same LRU the pager uses and, on memory pressure, "inflates" by
// claiming the coldest OSPA pages from the guest OS and telling the
// hardware to invalidate them. Liu et al.'s measurement (cited in the
// paper) puts reclaim throughput around 1 GB / 500 ms; ReclaimCycles
// charges that cost per reclaimed page at 3 GHz.
type Balloon struct {
	ctl Discarder
	lru *list.List
	el  map[uint64]*list.Element

	// WatermarkChunks is the free-chunk level the balloon restores on
	// each pressure event.
	WatermarkChunks int

	// ReclaimCyclesPerPage is the modeled cost of reclaiming one page
	// (default: 500 ms/GB at 3 GHz ≈ 5,700 cycles per 4 KB page).
	ReclaimCyclesPerPage uint64

	reclaimed    uint64
	reclaimCost  uint64
	pressureHits uint64
}

// NewBalloon builds a balloon driver over ctl.
func NewBalloon(ctl Discarder, watermarkChunks int) *Balloon {
	return &Balloon{
		ctl:                  ctl,
		lru:                  list.New(),
		el:                   make(map[uint64]*list.Element),
		WatermarkChunks:      watermarkChunks,
		ReclaimCyclesPerPage: 5700,
	}
}

// Note records that the guest touched an OSPA page (temperature
// tracking). Call it from the access path or a coarse sample of it.
func (b *Balloon) Note(page uint64) {
	if el, ok := b.el[page]; ok {
		b.lru.MoveToFront(el)
		return
	}
	b.el[page] = b.lru.PushFront(page)
}

// Forget drops a page from temperature tracking (it was discarded by
// someone else).
func (b *Balloon) Forget(page uint64) {
	if el, ok := b.el[page]; ok {
		b.lru.Remove(el)
		delete(b.el, page)
	}
}

// OnPressure is the memctl pressure callback: it reclaims cold pages
// until the free watermark is restored. It reports whether any memory
// was freed.
func (b *Balloon) OnPressure(needChunks int) bool {
	b.pressureHits++
	freedAny := false
	target := b.WatermarkChunks
	if needChunks > target {
		target = needChunks
	}
	for b.ctl.FreeMachineChunks() < target && b.lru.Len() > 0 {
		back := b.lru.Back()
		page := back.Value.(uint64)
		b.lru.Remove(back)
		delete(b.el, page)
		b.ctl.Discard(page)
		b.reclaimed++
		b.reclaimCost += b.ReclaimCyclesPerPage
		freedAny = true
	}
	return freedAny
}

// Reclaimed returns the number of pages ballooned away.
func (b *Balloon) Reclaimed() uint64 { return b.reclaimed }

// ReclaimCost returns the cumulative modeled reclaim cost in cycles.
func (b *Balloon) ReclaimCost() uint64 { return b.reclaimCost }

// PressureEvents returns how often the hardware signalled pressure.
func (b *Balloon) PressureEvents() uint64 { return b.pressureHits }
