package cxl

import (
	"testing"

	"compresso/internal/audit"
	"compresso/internal/datagen"
	"compresso/internal/dram"
	"compresso/internal/memctl"
	"compresso/internal/rng"
)

type image struct{ lines map[uint64][]byte }

func newImage() *image { return &image{lines: make(map[uint64][]byte)} }

func (im *image) ReadLine(addr uint64, buf []byte) {
	if l, ok := im.lines[addr]; ok {
		copy(buf, l)
		return
	}
	for i := range buf {
		buf[i] = 0
	}
}

func (im *image) set(addr uint64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	im.lines[addr] = cp
}

// testController builds a 4-page world: pages 0-1 near, pages 2-3 far.
func testController(mod func(*Config)) (*Controller, *image) {
	im := newImage()
	cfg := DefaultConfig(4, 4*memctl.PageSize)
	if mod != nil {
		mod(&cfg)
	}
	return New(cfg, dram.New(dram.DDR4_2666()), im), im
}

func installPage(c *Controller, im *image, page uint64, line []byte) {
	lines := make([][]byte, memctl.LinesPerPage)
	base := page * memctl.LinesPerPage
	for i := range lines {
		lines[i] = line
		im.set(base+uint64(i), line)
	}
	c.InstallPage(page, lines)
}

func farLine(page, i uint64) uint64 { return page*memctl.LinesPerPage + i }

func TestNearFarRouting(t *testing.T) {
	c, im := testController(nil)
	zero := make([]byte, memctl.LineBytes)
	for p := uint64(0); p < 4; p++ {
		installPage(c, im, p, zero)
	}
	if c.nearPages != 2 {
		t.Fatalf("nearPages %d with NearFraction 0.5 over 4 pages, want 2", c.nearPages)
	}

	c.ReadLine(0, 0) // page 0: near
	if r, _, flits, _, _ := c.LinkStats(); r != 0 || flits != 0 {
		t.Fatalf("near read touched the link: reads %d flits %d", r, flits)
	}
	if c.Stats().DataReads != 1 {
		t.Fatalf("near read DataReads %d, want 1", c.Stats().DataReads)
	}

	c.ReadLine(100, farLine(3, 0)) // page 3: far
	if r, _, flits, _, _ := c.LinkStats(); r != 1 || flits == 0 {
		t.Fatalf("far read link accounting: reads %d flits %d", r, flits)
	}
	if fs := c.FarStats(); fs.Reads != 1 {
		t.Fatalf("far DRAM reads %d, want 1", fs.Reads)
	}
}

// TestFlitAccounting pins the serialization math: one header flit per
// request, one header plus ceil(size/FlitBytes) payload flits per
// response, with compression shrinking the payload.
func TestFlitAccounting(t *testing.T) {
	zero := make([]byte, memctl.LineBytes)
	random := datagen.Line(rng.New(3), datagen.Random)

	for _, tc := range []struct {
		name string
		line []byte
	}{{"compressed", zero}, {"incompressible", random}} {
		t.Run(tc.name, func(t *testing.T) {
			c, im := testController(nil)
			installPage(c, im, 2, tc.line)

			size := c.sizeOf(tc.line)
			wantRead := 1 + (1 + c.payloadFlits(size)) // req header + resp header+payload
			c.ReadLine(0, farLine(2, 0))
			if _, _, flits, _, _ := c.LinkStats(); flits != wantRead {
				t.Fatalf("read sent %d flits, want %d (size %d)", flits, wantRead, size)
			}

			_, _, flits0, _, _ := c.LinkStats()
			res := c.WriteLine(500, farLine(2, 1), tc.line)
			if res.Done != 500 {
				t.Fatalf("posted far write Done %d, want 500", res.Done)
			}
			_, w, flits1, _, _ := c.LinkStats()
			if w != 1 || flits1-flits0 != 1+c.payloadFlits(size) {
				t.Fatalf("write sent %d flits, want %d", flits1-flits0, 1+c.payloadFlits(size))
			}
		})
	}

	// Sanity: the compressed payload must actually be smaller.
	c, _ := testController(nil)
	if c.payloadFlits(c.sizeOf(zero)) >= c.payloadFlits(c.sizeOf(random)) {
		t.Fatalf("compression does not shrink payload: zero %d flits, random %d flits",
			c.payloadFlits(c.sizeOf(zero)), c.payloadFlits(c.sizeOf(random)))
	}
}

// TestLinkQueueing pins that concurrent far transactions serialize on
// the request direction and the wait is charged as queue cycles.
func TestLinkQueueing(t *testing.T) {
	c, im := testController(nil)
	zero := make([]byte, memctl.LineBytes)
	installPage(c, im, 2, zero)

	c.ReadLine(0, farLine(2, 0))
	c.ReadLine(0, farLine(2, 1)) // same issue cycle: header must wait
	_, _, _, busy, queue := c.LinkStats()
	if queue < c.cfg.LinkCyclesPerFlit {
		t.Fatalf("second transaction did not queue: queue cycles %d", queue)
	}
	if busy == 0 {
		t.Fatal("link busy cycles not accounted")
	}
}

func TestDecompressLatencyOnCompressedReads(t *testing.T) {
	zero := make([]byte, memctl.LineBytes)
	var plain, raw uint64
	c, im := testController(nil)
	installPage(c, im, 2, zero)
	plain = c.ReadLine(0, farLine(2, 0)).Done

	c2, im2 := testController(func(cfg *Config) { cfg.Codec = nil })
	installPage(c2, im2, 2, zero)
	raw = c2.ReadLine(0, farLine(2, 0)).Done

	// Raw link sends 4 payload flits instead of 1 but skips the
	// decompressor; the compressed path must not be slower than raw by
	// more than the decompress latency.
	if plain >= raw+c.cfg.DecompressLatency {
		t.Fatalf("compressed far read (%d) slower than raw link (%d)", plain, raw)
	}
}

func TestCapacityNeutral(t *testing.T) {
	c, im := testController(nil)
	zero := make([]byte, memctl.LineBytes)
	for p := uint64(0); p < 4; p++ {
		installPage(c, im, p, zero)
	}
	if c.CompressedBytes() != c.InstalledBytes() || c.InstalledBytes() != 4*memctl.PageSize {
		t.Fatalf("CXL must be capacity-neutral: %d vs %d", c.CompressedBytes(), c.InstalledBytes())
	}
	if ratio := memctl.CompressionRatio(c); ratio != 1 {
		t.Fatalf("ratio %v, want exactly 1", ratio)
	}
}

func TestResetStatsClearsLinkAndFarTier(t *testing.T) {
	c, im := testController(nil)
	zero := make([]byte, memctl.LineBytes)
	installPage(c, im, 3, zero)
	c.ReadLine(0, farLine(3, 0))
	c.WriteLine(10, farLine(3, 1), zero)

	c.ResetStats()
	if st := c.Stats(); st != (memctl.Stats{}) {
		t.Fatalf("stats not zeroed: %+v", st)
	}
	if r, w, f, b, q := c.LinkStats(); r+w+f+b+q != 0 {
		t.Fatalf("link stats not zeroed: %d %d %d %d %d", r, w, f, b, q)
	}
	if fs := c.FarStats(); fs != (dram.Stats{}) {
		t.Fatalf("far tier stats not zeroed: %+v", fs)
	}
}

func TestAuditRepairsTamperedState(t *testing.T) {
	c, im := testController(nil)
	zero := make([]byte, memctl.LineBytes)
	installPage(c, im, 2, zero)

	c.sizes[farLine(2, 5)] = memctl.LineBytes // wrong far size shadow
	c.validPages++                            // drifted tally

	rep := c.Audit(audit.Full, false)
	var sawSize, sawDrift bool
	for _, v := range rep.Violations {
		switch v.Kind {
		case audit.SizeShadow:
			sawSize = true
		case audit.ValidCountDrift:
			sawDrift = true
		}
	}
	if !sawSize || !sawDrift {
		t.Fatalf("audit missed tampering (size %v drift %v):\n%s", sawSize, sawDrift, rep)
	}

	rep = c.Audit(audit.Full, true)
	if rep.Repaired() != len(rep.Violations) {
		t.Fatalf("repair left violations: %s", rep)
	}
	if after := c.Audit(audit.Full, false); !after.OK() {
		t.Fatalf("still dirty after repair:\n%s", after)
	}
}

// TestNearTierAuditIgnoresSource pins that near pages carry no shadow
// state: mutating their source must not trip a Full audit.
func TestNearTierAuditIgnoresSource(t *testing.T) {
	c, im := testController(nil)
	zero := make([]byte, memctl.LineBytes)
	installPage(c, im, 0, zero)
	im.set(0, datagen.Line(rng.New(4), datagen.Random))
	if rep := c.Audit(audit.Full, false); !rep.OK() {
		t.Fatalf("near-tier source change tripped the audit:\n%s", rep)
	}
}
