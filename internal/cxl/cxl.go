// Package cxl implements a CXL-expander memory tier in the spirit of
// the IBEX line of work (PAPERS.md): the OSPA footprint is split
// between local DDR (the near tier) and a second dram.Memory inside a
// CXL expander (the far tier) reached over a serialized link. The
// link — not the expander's internal DRAM — is the scarce resource,
// so it is modeled explicitly: every far access serializes header and
// payload flits through per-direction link cursors with queueing and
// busy-cycle accounting, and line compression pays off by shrinking
// the payload flit count rather than by freeing capacity
// (CompressedBytes == InstalledBytes, ratio 1.0).
//
// The page-to-tier split is deterministic (the first NearFraction of
// OSPA pages are near), so runs are bit-identical at any -jobs, and
// the far tier's DRAM stats and link counters feed the existing
// energy/stat rollups under the "cxl.far" / "cxl.link" prefixes.
package cxl

import (
	"fmt"

	"compresso/internal/audit"
	"compresso/internal/compress"
	"compresso/internal/dram"
	"compresso/internal/memctl"
	"compresso/internal/obs"
)

// Config parameterizes the CXL two-tier controller.
type Config struct {
	OSPAPages int
	// MachineBytes is accepted for backend symmetry; both tiers store
	// lines in place, so only the OSPA footprint is ever used.
	MachineBytes int64

	// NearFraction of the OSPA pages live in local DDR; the rest sit
	// behind the link in the expander.
	NearFraction float64

	// Far is the expander's internal DRAM configuration.
	Far dram.Config

	// LinkLatency is the propagation + protocol cost in core cycles
	// added per link traversal (each direction).
	LinkLatency uint64
	// FlitBytes is the link serialization granularity.
	FlitBytes int
	// LinkCyclesPerFlit is the core cycles one flit occupies its
	// direction's link.
	LinkCyclesPerFlit uint64

	// Codec compresses far-tier lines at the link endpoints (IBEX):
	// compressible lines need fewer payload flits. Nil sends raw.
	Codec compress.Codec

	// CompressLatency delays the link issue of a (posted) far write;
	// DecompressLatency lands on the critical path of compressed far
	// reads.
	CompressLatency   uint64
	DecompressLatency uint64
}

// DefaultConfig returns the expander setup used by the sweeps: half
// the footprint far, an x8-class link (~16 B/3 core cycles) that adds
// ~45 ns each way on a 3 GHz core clock, BDI at the link endpoints.
func DefaultConfig(ospaPages int, machineBytes int64) Config {
	return Config{
		OSPAPages:         ospaPages,
		MachineBytes:      machineBytes,
		NearFraction:      0.5,
		Far:               dram.DDR4_2666(),
		LinkLatency:       135,
		FlitBytes:         16,
		LinkCyclesPerFlit: 3,
		Codec:             compress.BDI{},
		CompressLatency:   9,
		DecompressLatency: 9,
	}
}

// linkStats is the serialized-link accounting exported under the
// "cxl.link" metric prefix.
type linkStats struct {
	Reads       uint64 // far read transactions
	Writes      uint64 // far write transactions
	FlitsSent   uint64 // header + payload flits, both directions
	BusyCycles  uint64 // core cycles of link occupancy
	QueueCycles uint64 // core cycles transactions waited for the link
}

// Controller is the CXL two-tier memory controller.
type Controller struct {
	cfg    Config
	near   *dram.Memory
	far    *dram.Memory
	source memctl.LineSource

	nearPages uint64
	// sizes shadows far lines' compressed sizes (the flit-count
	// input); near-tier entries stay zero and unused.
	sizes []uint8
	valid []bool

	// Per-direction link serialization cursors (full-duplex link).
	reqFree  uint64
	respFree uint64

	stats      memctl.Stats
	link       linkStats
	attr       *obs.Attribution
	validPages int64

	lineBuf [memctl.LineBytes]byte
}

var _ memctl.Controller = (*Controller)(nil)
var _ audit.Auditable = (*Controller)(nil)

// New builds a CXL two-tier controller: near accesses go to mem, far
// accesses cross the link into the controller's own expander DRAM.
func New(cfg Config, mem *dram.Memory, source memctl.LineSource) *Controller {
	if cfg.OSPAPages <= 0 {
		panic("cxl: OSPAPages must be positive")
	}
	if cfg.NearFraction < 0 || cfg.NearFraction > 1 {
		panic(fmt.Sprintf("cxl: NearFraction %v outside [0,1]", cfg.NearFraction))
	}
	if cfg.FlitBytes <= 0 {
		panic("cxl: FlitBytes must be positive")
	}
	return &Controller{
		cfg:       cfg,
		near:      mem,
		far:       dram.New(cfg.Far),
		source:    source,
		nearPages: uint64(float64(cfg.OSPAPages) * cfg.NearFraction),
		sizes:     make([]uint8, cfg.OSPAPages*memctl.LinesPerPage),
		valid:     make([]bool, cfg.OSPAPages),
	}
}

// Name implements memctl.Controller.
func (c *Controller) Name() string { return "cxl" }

// SetAttribution installs the cycle-accounting ledger (nil disables).
// Link-latency propagation is attributed to the header component on
// the request direction and to the payload component on the response
// direction, so the two per-direction traversals stay distinguishable.
func (c *Controller) SetAttribution(a *obs.Attribution) { c.attr = a }

// FarStats returns the expander DRAM's accumulated counters.
func (c *Controller) FarStats() dram.Stats { return c.far.Stats() }

// LinkStats returns the serialized link's accumulated counters.
func (c *Controller) LinkStats() (reads, writes, flits, busy, queue uint64) {
	return c.link.Reads, c.link.Writes, c.link.FlitsSent, c.link.BusyCycles, c.link.QueueCycles
}

func (c *Controller) checkAddr(lineAddr uint64) {
	if lineAddr >= uint64(len(c.sizes)) {
		panic(fmt.Sprintf("cxl: line %d outside %d-page footprint", lineAddr, c.cfg.OSPAPages))
	}
}

func (c *Controller) isFar(page uint64) bool { return page >= c.nearPages }

// sizeOf computes a line's link-compressed size (LineBytes when no
// codec is configured).
func (c *Controller) sizeOf(data []byte) uint8 {
	if c.cfg.Codec == nil {
		return memctl.LineBytes
	}
	n := compress.SizeOnly(c.cfg.Codec, data)
	if n > memctl.LineBytes {
		n = memctl.LineBytes
	}
	if n < 1 {
		n = 1
	}
	return uint8(n)
}

// payloadFlits returns the flit count for a compressed payload of
// size bytes.
func (c *Controller) payloadFlits(size uint8) uint64 {
	f := (uint64(size) + uint64(c.cfg.FlitBytes) - 1) / uint64(c.cfg.FlitBytes)
	if f < 1 {
		f = 1
	}
	return f
}

// sendFlits serializes flits onto one link direction starting no
// earlier than ready, advancing the direction's cursor and the shared
// accounting. It returns the cycle the last flit clears the link plus
// the queue-wait and occupancy cycles (done-ready == queued+occupied),
// which the attribution call sites split into link components.
func (c *Controller) sendFlits(ready uint64, cursor *uint64, flits uint64) (done, queued, occupied uint64) {
	start := ready
	if *cursor > start {
		start = *cursor
		queued = start - ready
		c.link.QueueCycles += queued
	}
	occupied = flits * c.cfg.LinkCyclesPerFlit
	done = start + occupied
	*cursor = done
	c.link.BusyCycles += occupied
	c.link.FlitsSent += flits
	return done, queued, occupied
}

// ReadLine implements memctl.Controller.
func (c *Controller) ReadLine(now uint64, lineAddr uint64) memctl.Result {
	c.checkAddr(lineAddr)
	c.stats.DemandReads++
	page := lineAddr / memctl.LinesPerPage
	c.attr.Begin(now, page, false)
	if !c.isFar(page) {
		c.stats.DataReads++
		done := c.near.Access(now, lineAddr, false)
		c.attr.ExposedDRAM(c.near.LastBreakdown())
		c.attr.End(done)
		return memctl.Result{Done: done}
	}

	// Request header crosses the link, the expander's DRAM serves the
	// line, and the (compressed) payload serializes back.
	c.link.Reads++
	reqDone, reqQueued, reqOcc := c.sendFlits(now, &c.reqFree, 1)
	c.attr.Exposed(obs.CompLinkQueue, reqQueued)
	c.attr.Exposed(obs.CompLinkHeader, reqOcc+c.cfg.LinkLatency)
	farDone := c.far.Access(reqDone+c.cfg.LinkLatency, lineAddr, false)
	c.attr.ExposedDRAM(c.far.LastBreakdown())
	c.stats.DataReads++
	size := c.sizes[lineAddr]
	respDone, respQueued, respOcc := c.sendFlits(farDone+c.cfg.LinkLatency, &c.respFree, 1+c.payloadFlits(size))
	c.attr.Exposed(obs.CompLinkQueue, respQueued)
	c.attr.Exposed(obs.CompLinkHeader, c.cfg.LinkCyclesPerFlit)
	c.attr.Exposed(obs.CompLinkPayload, c.cfg.LinkLatency+respOcc-c.cfg.LinkCyclesPerFlit)
	done := respDone
	if c.cfg.Codec != nil && size < memctl.LineBytes {
		done += c.cfg.DecompressLatency
		c.attr.Exposed(obs.CompDecompress, c.cfg.DecompressLatency)
	}
	c.attr.End(done)
	return memctl.Result{Done: done}
}

// WriteLine implements memctl.Controller. Writes are posted: the
// compressor, link and expander DRAM are off the critical path.
func (c *Controller) WriteLine(now uint64, lineAddr uint64, data []byte) memctl.Result {
	c.checkAddr(lineAddr)
	c.stats.DemandWrites++
	page := lineAddr / memctl.LinesPerPage
	// Writes are posted: everything below is off the critical path.
	c.attr.Begin(now, page, true)
	c.attr.Posted()
	if !c.isFar(page) {
		c.stats.DataWrites++
		c.near.Access(now, lineAddr, true)
		queue, service := c.near.LastBreakdown()
		c.attr.Hidden(obs.CompDRAMQueue, queue)
		c.attr.Hidden(obs.CompDRAMService, service)
		c.attr.End(now)
		return memctl.Result{Done: now}
	}

	c.link.Writes++
	size := c.sizeOf(data)
	c.sizes[lineAddr] = size
	reqDone, queued, occupied := c.sendFlits(now+c.cfg.CompressLatency, &c.reqFree, 1+c.payloadFlits(size))
	c.attr.Hidden(obs.CompLinkQueue, queued)
	c.attr.Hidden(obs.CompLinkHeader, c.cfg.LinkCyclesPerFlit+c.cfg.LinkLatency)
	c.attr.Hidden(obs.CompLinkPayload, occupied-c.cfg.LinkCyclesPerFlit)
	c.far.Access(reqDone+c.cfg.LinkLatency, lineAddr, true)
	queue, service := c.far.LastBreakdown()
	c.attr.Hidden(obs.CompDRAMQueue, queue)
	c.attr.Hidden(obs.CompDRAMService, service)
	c.stats.DataWrites++
	c.attr.End(now)
	return memctl.Result{Done: now}
}

// InstallPage implements memctl.Controller: records far-line sizes
// with no stat or timing charges.
func (c *Controller) InstallPage(page uint64, lines [][]byte) {
	if page >= uint64(c.cfg.OSPAPages) {
		panic(fmt.Sprintf("cxl: page %d outside %d-page footprint", page, c.cfg.OSPAPages))
	}
	if c.isFar(page) {
		base := page * memctl.LinesPerPage
		for i, line := range lines {
			c.sizes[base+uint64(i)] = c.sizeOf(line)
		}
	}
	if !c.valid[page] {
		c.valid[page] = true
		c.validPages++
	}
}

// Stats implements memctl.Controller.
func (c *Controller) Stats() memctl.Stats { return c.stats }

// ResetStats implements memctl.Controller: clears the demand and link
// accounting plus the internal far tier's DRAM counters (the near
// tier belongs to the simulator, which resets it alongside).
func (c *Controller) ResetStats() {
	c.stats = memctl.Stats{}
	c.link = linkStats{}
	c.far.ResetStats()
}

// CompressedBytes implements memctl.Controller: both tiers store
// lines in place — compression buys link bandwidth, not capacity.
func (c *Controller) CompressedBytes() int64 { return c.validPages * memctl.PageSize }

// InstalledBytes implements memctl.Controller.
func (c *Controller) InstalledBytes() int64 { return c.validPages * memctl.PageSize }

// RegisterMetrics exports the link and far-tier counters under the
// "cxl" prefix (DESIGN.md §12 stat obligations).
func (c *Controller) RegisterMetrics(r *obs.Registry) {
	r.AddStruct("cxl.link", c.link)
	c.far.Stats().Register(r, "cxl.far")
	var nearValid, farValid uint64
	for page, ok := range c.valid {
		if !ok {
			continue
		}
		if c.isFar(uint64(page)) {
			farValid++
		} else {
			nearValid++
		}
	}
	r.Counter("cxl.pages_near").Set(nearValid)
	r.Counter("cxl.pages_far").Set(farValid)
}

// Audit implements audit.Auditable. Structural audits cross-check the
// valid-page tally; Full audits additionally recompute every far
// line's link-compressed size from the authoritative source. Repair
// recomputes the shadow sizes.
func (c *Controller) Audit(scope audit.Scope, repair bool) audit.Report {
	rep := audit.Report{Scope: scope, Ops: c.stats.DemandAccesses()}
	c.stats.AuditRuns++
	var scanned int64
	for page := uint64(0); page < uint64(c.cfg.OSPAPages); page++ {
		if !c.valid[page] {
			continue
		}
		scanned++
		rep.Pages++
		if scope != audit.Full || !c.isFar(page) {
			continue
		}
		dirty := false
		base := page * memctl.LinesPerPage
		for l := base; l < base+memctl.LinesPerPage; l++ {
			c.source.ReadLine(l, c.lineBuf[:])
			if got := c.sizeOf(c.lineBuf[:]); got != c.sizes[l] {
				v := audit.Violation{
					Kind:   audit.SizeShadow,
					Page:   page,
					Detail: fmt.Sprintf("far line %d recorded size %d, source compresses to %d", l, c.sizes[l], got),
				}
				if repair {
					c.sizes[l] = got
					v.Repaired = true
					dirty = true
				}
				rep.Violations = append(rep.Violations, v)
			}
		}
		if dirty {
			c.stats.PagesRepaired++
		}
	}
	if scanned != c.validPages {
		rep.Violations = append(rep.Violations, audit.Violation{
			Kind:     audit.ValidCountDrift,
			Page:     audit.NoPage,
			Detail:   fmt.Sprintf("valid-page counter %d, scan found %d", c.validPages, scanned),
			Repaired: repair,
		})
		if repair {
			c.validPages = scanned
		}
	}
	c.stats.CorruptionsDetected += uint64(len(rep.Violations))
	return rep
}

// Registered backend (DESIGN.md §12). Mod is func(*cxl.Config).
func init() {
	memctl.RegisterBackend(memctl.Backend{
		Name:         "cxl",
		Desc:         "CXL expander tier: near DDR + far DRAM behind a serialized link with IBEX-style link compression",
		MachineBytes: memctl.BaselineMachineBytes,
		New: func(p memctl.BuildParams) memctl.Controller {
			c := DefaultConfig(p.OSPAPages, p.MachineBytes)
			if p.Mod != nil {
				mod, ok := p.Mod.(func(*Config))
				if !ok {
					panic(fmt.Sprintf("cxl: backend mod has type %T, want func(*cxl.Config)", p.Mod))
				}
				mod(&c)
			}
			return New(c, p.Mem, p.Source)
		},
	})
}
