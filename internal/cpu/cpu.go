// Package cpu implements the trace-driven timing core of the
// evaluation (Tab. III: 3 GHz, 4-wide issue, 192-entry ROB). It is an
// interval-style model rather than a full out-of-order pipeline: cache
// hits are largely hidden, main-memory loads overlap up to the
// ROB/MSHR-limited memory-level parallelism, and stores are posted.
// This is the standard fidelity level for memory-system studies — the
// quantities Compresso changes (DRAM occupancy, critical-path load
// latency, fault stalls) all flow through it.
package cpu

import (
	"compresso/internal/cache"
	"compresso/internal/memctl"
	"compresso/internal/obs"
	"compresso/internal/workload"
)

// Config holds the core's timing parameters.
type Config struct {
	IssueWidth int // non-memory instructions per cycle
	ROB        int // instruction window for miss overlap
	MLP        int // maximum outstanding memory loads (MSHRs)

	// Hit latencies in core cycles, and the fraction of them the
	// out-of-order engine cannot hide.
	L1Lat, L2Lat, L3Lat uint64
	HideFraction        float64
}

// DefaultConfig returns the paper's core configuration.
func DefaultConfig() Config {
	return Config{
		IssueWidth:   4,
		ROB:          192,
		MLP:          10,
		L1Lat:        4,
		L2Lat:        12,
		L3Lat:        38,
		HideFraction: 0.75,
	}
}

// Stats holds the core's execution counters.
type Stats struct {
	Instrs      uint64
	MemOps      uint64
	Cycles      uint64
	StallCycles uint64 // cycles lost to memory (loads + faults)
	LoadsL1     uint64
	LoadsL2     uint64
	LoadsL3     uint64
	LoadsMem    uint64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// Register records the counters into r under prefix (canonically
// "cpu"), plus the derived IPC gauge when the core ran.
func (s Stats) Register(r *obs.Registry, prefix string) {
	r.AddStruct(prefix, s)
	if s.Cycles > 0 {
		r.Gauge(prefix + ".ipc").Set(s.IPC())
	}
}

type outstanding struct {
	done    uint64
	atInstr uint64
}

// Core executes a workload trace against a cache hierarchy and memory
// controller. Not safe for concurrent use.
type Core struct {
	cfg   Config
	hier  *cache.Hierarchy
	ctl   memctl.Controller
	src   memctl.LineSource
	now   uint64
	stats Stats

	misses  []outstanding // outstanding memory loads (MLP window)
	instrs  uint64
	lineBuf [memctl.LineBytes]byte
	// leftover fractional issue cycles, in instruction units.
	issueDebt int
	// cycleBase is the cycle of the last ResetStats: reported Cycles
	// (and hence IPC) cover only the post-reset window, matching the
	// memory-side warmup reset.
	cycleBase uint64
}

// New builds a core. src supplies line values for dirty writebacks.
func New(cfg Config, hier *cache.Hierarchy, ctl memctl.Controller, src memctl.LineSource) *Core {
	if cfg.IssueWidth <= 0 || cfg.MLP <= 0 {
		panic("cpu: invalid config")
	}
	return &Core{cfg: cfg, hier: hier, ctl: ctl, src: src}
}

// Now returns the core's current cycle.
func (c *Core) Now() uint64 { return c.now }

// Stats returns a copy of the counters, with Cycles up to date. After
// a ResetStats, every counter — including Cycles — covers only the
// post-reset window.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.now - c.cycleBase
	return s
}

// ResetStats zeroes the execution counters at end of warmup without
// touching the core's clock, ROB window or issue state. The local time
// base moves to the current cycle so IPC is computed over the same
// post-warmup window as the controller/DRAM/cache stats (which the
// simulator resets at the same moment).
func (c *Core) ResetStats() {
	c.stats = Stats{}
	c.cycleBase = c.now
}

// Step executes one trace operation.
func (c *Core) Step(op *workload.Op) {
	// Issue the non-memory instructions.
	c.instrs += uint64(op.NonMemInstrs) + 1
	c.stats.Instrs += uint64(op.NonMemInstrs) + 1
	c.stats.MemOps++
	c.issueDebt += op.NonMemInstrs + 1
	c.now += uint64(c.issueDebt / c.cfg.IssueWidth)
	c.issueDebt %= c.cfg.IssueWidth

	level := c.hier.Access(op.LineAddr, op.Write)

	// Route the generated memory traffic through the controller.
	var fillDone uint64
	for _, ev := range c.hier.Events {
		if ev.Write {
			c.src.ReadLine(ev.LineAddr, c.lineBuf[:])
			res := c.ctl.WriteLine(c.now, ev.LineAddr, c.lineBuf[:])
			// Posted writes do not stall; an OS page fault (LCP's
			// overflow handling) does.
			if res.Done > c.now {
				c.stats.StallCycles += res.Done - c.now
				c.now = res.Done
			}
			continue
		}
		res := c.ctl.ReadLine(c.now, ev.LineAddr)
		if ev.LineAddr == op.LineAddr {
			fillDone = res.Done
		}
	}

	if op.Write {
		// Stores retire through the write buffer; charge nothing
		// beyond the traffic already issued.
		return
	}

	switch level {
	case 1:
		c.stats.LoadsL1++
		// L1 hits are fully pipelined.
	case 2:
		c.stats.LoadsL2++
		c.stall(uint64(float64(c.cfg.L2Lat) * (1 - c.cfg.HideFraction)))
	case 3:
		c.stats.LoadsL3++
		c.stall(uint64(float64(c.cfg.L3Lat) * (1 - c.cfg.HideFraction)))
	default:
		c.stats.LoadsMem++
		c.memLoad(fillDone)
	}
}

func (c *Core) stall(cycles uint64) {
	c.stats.StallCycles += cycles
	c.now += cycles
}

// memLoad models ROB/MSHR-limited overlap of main-memory loads: a miss
// joins the outstanding window; the core only stalls when the window's
// capacity (MLP) or reach (ROB instructions) is exceeded, or — at
// retirement pressure — for the unhidable tail of the oldest miss.
func (c *Core) memLoad(done uint64) {
	// Retire outstanding misses that are complete or out of ROB reach.
	for len(c.misses) > 0 {
		head := c.misses[0]
		if head.done <= c.now {
			c.misses = c.misses[1:]
			continue
		}
		if c.instrs-head.atInstr > uint64(c.cfg.ROB) || len(c.misses) >= c.cfg.MLP {
			// The window is exhausted: wait for the oldest miss.
			c.stall(head.done - c.now)
			c.misses = c.misses[1:]
			continue
		}
		break
	}
	if done > c.now {
		c.misses = append(c.misses, outstanding{done: done, atInstr: c.instrs})
	}
}

// Drain retires all outstanding misses (end of simulation).
func (c *Core) Drain() {
	for _, m := range c.misses {
		if m.done > c.now {
			c.stall(m.done - c.now)
		}
	}
	c.misses = nil
}
