package cpu

import (
	"testing"

	"compresso/internal/cache"
	"compresso/internal/dram"
	"compresso/internal/memctl"
	"compresso/internal/workload"
)

type zeroSource struct{}

func (zeroSource) ReadLine(addr uint64, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
}

func newCore(t *testing.T) (*Core, *dram.Memory) {
	t.Helper()
	mem := dram.New(dram.DDR4_2666())
	ctl := memctl.NewUncompressed(mem)
	hier := cache.NewHierarchy(cache.New("l3", 2<<20, 16))
	return New(DefaultConfig(), hier, ctl, zeroSource{}), mem
}

func step(c *Core, instrs int, addr uint64, write bool) {
	c.Step(&workload.Op{NonMemInstrs: instrs, LineAddr: addr, Write: write})
}

func TestIssueWidthAdvancesClock(t *testing.T) {
	c, _ := newCore(t)
	// Warm the line so the op itself is an L1 hit.
	step(c, 0, 0, false)
	c.Drain()
	start := c.Now()
	step(c, 399, 0, false) // 400 instructions at width 4 = 100 cycles
	if got := c.Now() - start; got != 100 {
		t.Fatalf("400 instrs advanced %d cycles, want 100", got)
	}
}

func TestL1HitNoStall(t *testing.T) {
	c, _ := newCore(t)
	step(c, 0, 5, false) // miss, fills
	c.Drain()
	s0 := c.Stats().StallCycles
	step(c, 0, 5, false) // L1 hit
	if c.Stats().StallCycles != s0 {
		t.Fatal("L1 hit stalled")
	}
	if c.Stats().LoadsL1 != 1 {
		t.Fatalf("LoadsL1 = %d", c.Stats().LoadsL1)
	}
}

func TestMemoryMissStallsEventually(t *testing.T) {
	c, _ := newCore(t)
	// A long pointer-chase of cold misses must accumulate stalls once
	// the MLP window fills.
	for i := uint64(0); i < 100; i++ {
		step(c, 0, i*64, false) // distinct sets, all cold
	}
	c.Drain()
	st := c.Stats()
	if st.LoadsMem != 100 {
		t.Fatalf("LoadsMem = %d", st.LoadsMem)
	}
	if st.StallCycles == 0 {
		t.Fatal("100 cold misses produced no stalls")
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// With instruction gaps below the ROB reach, misses overlap: total
	// time must be far below misses * unloaded latency.
	c, mem := newCore(t)
	unloaded := mem.ReadLatency()
	const n = 64
	for i := uint64(0); i < n; i++ {
		step(c, 3, i*977, false)
	}
	c.Drain()
	serial := unloaded * n
	if c.Now() >= serial {
		t.Fatalf("no overlap: %d cycles vs serial %d", c.Now(), serial)
	}
}

func TestMLPCapSerializes(t *testing.T) {
	// The same back-to-back miss stream must run slower with MLP=1
	// (every miss serializes) than with the default window.
	run := func(mlp int) uint64 {
		cfg := DefaultConfig()
		cfg.MLP = mlp
		mem := dram.New(dram.DDR4_2666())
		ctl := memctl.NewUncompressed(mem)
		c := New(cfg, cache.NewHierarchy(cache.New("l3", 2<<20, 16)), ctl, zeroSource{})
		for i := uint64(0); i < 64; i++ {
			step(c, 0, i*977, false)
		}
		c.Drain()
		return c.Now()
	}
	wide := run(10)
	narrow := run(1)
	if narrow <= wide {
		t.Fatalf("MLP=1 (%d cycles) not slower than MLP=10 (%d cycles)", narrow, wide)
	}
}

func TestStoresArePosted(t *testing.T) {
	c, _ := newCore(t)
	before := c.Stats().StallCycles
	for i := uint64(0); i < 50; i++ {
		step(c, 0, i*977, true)
	}
	if c.Stats().StallCycles != before {
		t.Fatal("stores stalled the core")
	}
}

// faultingController injects a page-fault-like completion on writes.
type faultingController struct {
	memctl.Uncompressed
	penalty uint64
}

func (f *faultingController) WriteLine(now uint64, a uint64, d []byte) memctl.Result {
	return memctl.Result{Done: now + f.penalty}
}
func (f *faultingController) ReadLine(now uint64, a uint64) memctl.Result {
	return memctl.Result{Done: now + 50}
}
func (f *faultingController) InstallPage(p uint64, l [][]byte) {}
func (f *faultingController) ResetStats()                      {}
func (f *faultingController) Stats() memctl.Stats              { return memctl.Stats{} }
func (f *faultingController) CompressedBytes() int64           { return 0 }
func (f *faultingController) InstalledBytes() int64            { return 0 }

func TestWritebackFaultStalls(t *testing.T) {
	f := &faultingController{penalty: 5000}
	hier := &cache.Hierarchy{
		L1: cache.New("l1", 2*64, 2),
		L2: cache.New("l2", 4*64, 2),
		L3: cache.New("l3", 8*64, 2),
	}
	c := New(DefaultConfig(), hier, f, zeroSource{})
	// Dirty many conflicting lines so writebacks reach the controller.
	for i := uint64(0); i < 200; i++ {
		step(c, 0, i*64, true)
	}
	if c.Stats().StallCycles < 5000 {
		t.Fatalf("stalls %d: fault penalty not charged", c.Stats().StallCycles)
	}
}

func TestIPCBounds(t *testing.T) {
	c, _ := newCore(t)
	for i := 0; i < 2000; i++ {
		step(c, 11, 0, false) // all L1 hits after the first
	}
	c.Drain()
	ipc := c.Stats().IPC()
	if ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC %v outside (0, 4]", ipc)
	}
	if ipc < 3.5 {
		t.Fatalf("IPC %v too low for an all-hit trace", ipc)
	}
}

func TestStatsAccounting(t *testing.T) {
	c, _ := newCore(t)
	step(c, 9, 0, false)
	step(c, 9, 0, true)
	st := c.Stats()
	if st.Instrs != 20 || st.MemOps != 2 {
		t.Fatalf("stats %+v", st)
	}
}
