// Runner-level chaos: deterministic disruption of experiment grid
// cells, the execution-layer counterpart of the controller fault
// injector. Where Injector corrupts simulated state (and the
// controller must repair it), Chaos breaks the harness itself — cells
// panic, fail transiently, stall, or hard-kill the process — and the
// resilience layer (retry, quarantine, journal/resume; DESIGN.md §11)
// must carry the run to a byte-identical result anyway.
//
// Every decision is drawn from a private stream keyed by
// (seed, grid label, cell index, attempt), so a given chaos seed
// disrupts the same cells at the same attempts regardless of worker
// count or goroutine scheduling — and a retried cell re-rolls its
// fate, so transient chaos actually is transient.
package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"compresso/internal/rng"
)

// ChaosSite identifies one class of runner-level disruption.
type ChaosSite int

const (
	// CellPanic panics the cell (a defect: never retried, quarantined
	// or fatal).
	CellPanic ChaosSite = iota
	// CellTransient fails the cell with a retryable error.
	CellTransient
	// CellDelay stalls the cell (exercises deadlines and backoff under
	// contention).
	CellDelay
	// CellKill hard-kills the process (SIGKILL semantics: no deferred
	// flushes run). Soak-test only — it takes the whole run down so the
	// journal's crash durability can be proven from outside.
	CellKill

	// NChaosSites is the number of chaos sites.
	NChaosSites
)

var chaosSiteNames = [NChaosSites]string{
	CellPanic:     "cellpanic",
	CellTransient: "celltransient",
	CellDelay:     "celldelay",
	CellKill:      "cellkill",
}

// String returns the site's spec name.
func (s ChaosSite) String() string {
	if s < 0 || s >= NChaosSites {
		return fmt.Sprintf("ChaosSite(%d)", int(s))
	}
	return chaosSiteNames[s]
}

// ChaosConfig selects per-site disruption rates (probability per cell
// attempt). The zero value disrupts nothing.
type ChaosConfig struct {
	// Seed drives the per-(label, index, attempt) decision streams.
	Seed uint64
	// Rate is the per-attempt probability per site.
	Rate [NChaosSites]float64
	// Delay is the stall applied when CellDelay fires (default 2ms).
	Delay time.Duration
}

// Enabled reports whether any site has a non-zero rate.
func (c ChaosConfig) Enabled() bool {
	for _, r := range c.Rate {
		if r > 0 {
			return true
		}
	}
	return false
}

// ParseChaosSpec parses a comma-separated chaos spec such as
// "cellpanic:0.02,celltransient:0.1" into a ChaosConfig seeded with
// seed.
func ParseChaosSpec(spec string, seed uint64) (ChaosConfig, error) {
	cfg := ChaosConfig{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return cfg, fmt.Errorf("faults: bad chaos entry %q (want site:rate)", part)
		}
		site := ChaosSite(-1)
		for s, n := range chaosSiteNames {
			if n == name {
				site = ChaosSite(s)
				break
			}
		}
		if site < 0 {
			return cfg, fmt.Errorf("faults: unknown chaos site %q (have %s)",
				name, strings.Join(chaosSiteNames[:], ", "))
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return cfg, fmt.Errorf("faults: bad chaos rate %q for site %s", val, name)
		}
		cfg.Rate[site] = rate
	}
	return cfg, nil
}

// ChaosTotals tallies chaos exposure and injections per site.
type ChaosTotals struct {
	Sites [NChaosSites]SiteCount
}

// Injected returns the total injected disruptions across sites.
func (t ChaosTotals) Injected() uint64 {
	var n uint64
	for _, c := range t.Sites {
		n += c.Injected
	}
	return n
}

// String renders the non-zero-exposure sites compactly.
func (t ChaosTotals) String() string {
	var parts []string
	for s, c := range t.Sites {
		if c.Opportunities == 0 && c.Injected == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %d/%d", ChaosSite(s), c.Injected, c.Opportunities))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "no opportunities"
	}
	return strings.Join(parts, ", ")
}

// hardKill terminates the process with SIGKILL semantics; a variable
// so tests can intercept it.
var hardKill = func() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill() // SIGKILL on unix: no deferred flushes, no recovery
	}
	os.Exit(137) // unreachable on unix; kill fallback elsewhere
}

// Chaos disrupts grid cells deterministically. A nil *Chaos is a
// complete no-op, so callers hook it in unconditionally. Safe for
// concurrent use.
type Chaos struct {
	cfg    ChaosConfig
	mu     sync.Mutex
	totals ChaosTotals
}

// NewChaos builds a chaos injector from cfg, or nil when cfg disrupts
// nothing.
func NewChaos(cfg ChaosConfig) *Chaos {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 2 * time.Millisecond
	}
	return &Chaos{cfg: cfg}
}

// Enabled reports whether disruption is active.
func (c *Chaos) Enabled() bool { return c != nil }

// Disrupt rolls the chaos sites for one cell attempt and applies
// whatever fires: a delay stalls (honoring ctx), a kill takes the
// process down, a panic panics, and a transient failure returns a
// retryable error (the caller wraps it via its retry classification —
// the error reports itself transient through Transient() bool).
// Returns nil when the attempt proceeds undisturbed.
func (c *Chaos) Disrupt(ctx context.Context, label string, index, attempt int) error {
	if c == nil {
		return nil
	}
	r := rng.New(c.cfg.Seed ^ chaosKey(label, index, attempt))
	delay := c.roll(r, CellDelay)
	kill := c.roll(r, CellKill)
	pan := c.roll(r, CellPanic)
	transient := c.roll(r, CellTransient)
	if delay {
		t := time.NewTimer(c.cfg.Delay)
		defer t.Stop()
		if ctx == nil {
			<-t.C
		} else {
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if kill {
		hardKill()
	}
	if pan {
		panic(fmt.Sprintf("chaos: injected panic in %s[%d] attempt %d", label, index, attempt))
	}
	if transient {
		return &ChaosTransientError{Label: label, Index: index, Attempt: attempt}
	}
	return nil
}

// roll decides one site for the current attempt stream and tallies it.
func (c *Chaos) roll(r *rng.Rand, site ChaosSite) bool {
	p := c.cfg.Rate[site]
	fired := p > 0 && r.Float64() < p
	c.mu.Lock()
	c.totals.Sites[site].Opportunities++
	if fired {
		c.totals.Sites[site].Injected++
	}
	c.mu.Unlock()
	return fired
}

// Totals returns a snapshot of the counters (zero value when nil).
func (c *Chaos) Totals() ChaosTotals {
	if c == nil {
		return ChaosTotals{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals
}

// chaosKey hashes a cell attempt's identity into the decision-stream
// key.
func chaosKey(label string, index, attempt int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(index)))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(attempt)))
	return h.Sum64()
}

// ChaosTransientError is the retryable failure CellTransient injects.
type ChaosTransientError struct {
	Label   string
	Index   int
	Attempt int
}

// Error implements error.
func (e *ChaosTransientError) Error() string {
	return fmt.Sprintf("chaos: injected transient failure in %s[%d] attempt %d",
		e.Label, e.Index, e.Attempt)
}

// Transient marks the failure retryable (the parallel package's
// marker-interface contract, kept import-free in both directions).
func (e *ChaosTransientError) Transient() bool { return true }
