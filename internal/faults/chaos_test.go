package faults

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseChaosSpec(t *testing.T) {
	cfg, err := ParseChaosSpec("cellpanic:0.02, celltransient:0.5", 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.Rate[CellPanic] != 0.02 || cfg.Rate[CellTransient] != 0.5 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatal("non-empty spec not enabled")
	}
	if c, err := ParseChaosSpec("", 1); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"cellpanic", "nosite:0.1", "cellpanic:2", "cellpanic:-1", "cellpanic:x"} {
		if _, err := ParseChaosSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestChaosDeterministicFate: the same (seed, label, index, attempt)
// always rolls the same disruption, and a different attempt re-rolls —
// transient chaos is transient under retry.
func TestChaosDeterministicFate(t *testing.T) {
	mk := func() *Chaos {
		return NewChaos(ChaosConfig{Seed: 3, Rate: mkRate(CellTransient, 0.5)})
	}
	a, b := mk(), mk()
	varies := false
	for i := 0; i < 64; i++ {
		e1 := a.Disrupt(context.Background(), "g", i, 1)
		e2 := b.Disrupt(context.Background(), "g", i, 1)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("cell %d fate differs across identical injectors", i)
		}
		e3 := mk().Disrupt(context.Background(), "g", i, 2)
		if (e1 == nil) != (e3 == nil) {
			varies = true
		}
	}
	if !varies {
		t.Fatal("attempt number never changed a cell's fate at rate 0.5")
	}
}

func mkRate(site ChaosSite, p float64) [NChaosSites]float64 {
	var r [NChaosSites]float64
	r[site] = p
	return r
}

func TestChaosTransientMarker(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, Rate: mkRate(CellTransient, 1)})
	err := c.Disrupt(context.Background(), "g", 0, 1)
	m, ok := err.(interface{ Transient() bool })
	if !ok || !m.Transient() {
		t.Fatalf("transient chaos error lacks the Transient marker: %v", err)
	}
	if !strings.Contains(err.Error(), "g[0] attempt 1") {
		t.Fatalf("error lacks cell identity: %v", err)
	}
}

func TestChaosPanicSite(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, Rate: mkRate(CellPanic, 1)})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "injected panic") {
			t.Fatalf("recover = %v", r)
		}
	}()
	c.Disrupt(context.Background(), "g", 0, 1)
	t.Fatal("panic site did not panic")
}

func TestChaosKillSite(t *testing.T) {
	killed := false
	old := hardKill
	hardKill = func() { killed = true }
	defer func() { hardKill = old }()
	c := NewChaos(ChaosConfig{Seed: 1, Rate: mkRate(CellKill, 1)})
	if err := c.Disrupt(context.Background(), "g", 0, 1); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill site did not fire")
	}
}

// TestChaosDelayHonorsContext: a canceled context cuts the injected
// stall short and reports the cancellation.
func TestChaosDelayHonorsContext(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, Rate: mkRate(CellDelay, 1), Delay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := c.Disrupt(ctx, "g", 0, 1)
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("canceled delay still stalled")
	}
}

func TestChaosNilSafety(t *testing.T) {
	var c *Chaos
	if c.Enabled() {
		t.Fatal("nil chaos enabled")
	}
	if err := c.Disrupt(context.Background(), "g", 0, 1); err != nil {
		t.Fatal(err)
	}
	if c.Totals().Injected() != 0 {
		t.Fatal("nil chaos has totals")
	}
	if NewChaos(ChaosConfig{}) != nil {
		t.Fatal("disabled config built an injector")
	}
}

func TestChaosTotals(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, Rate: mkRate(CellTransient, 1)})
	for i := 0; i < 5; i++ {
		c.Disrupt(context.Background(), "g", i, 1)
	}
	tot := c.Totals()
	if tot.Injected() != 5 || tot.Sites[CellTransient].Opportunities != 5 {
		t.Fatalf("totals = %+v", tot)
	}
	if s := tot.String(); !strings.Contains(s, "celltransient 5/5") {
		t.Fatalf("totals string %q", s)
	}
	if s := (ChaosTotals{}).String(); s != "no opportunities" {
		t.Fatalf("empty totals string %q", s)
	}
}
