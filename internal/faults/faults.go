// Package faults is a deterministic, seedable fault injector for the
// Compresso controller stack. It models the corruption classes a
// production compressed-memory controller must survive (CRAM and the
// software-defined compressed tiers of Kumar et al. both treat these
// as table stakes): bit flips in stored compressed data, bit flips in
// packed metadata entries, dropped and duplicated chunk allocations,
// forced metadata-cache invalidations, and truncated trace files.
//
// The injector is entirely pull-based: subsystems ask it whether a
// fault fires at each opportunity site (Roll), so a nil *Injector is a
// complete no-op and the hot path is bit-identical to an injector-free
// build. All draws come from one private xoshiro stream, so a given
// (seed, rate) configuration injects the same faults at the same
// opportunities on every run.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"compresso/internal/obs"
	"compresso/internal/rng"
)

// Site identifies one class of injected fault and the opportunity it
// is rolled against.
type Site int

const (
	// DataBitFlip corrupts a stored compressed cache line; rolled per
	// demand writeback. The rate is per data bit (512 bits/line).
	DataBitFlip Site = iota
	// MetaBitFlip flips one bit of a packed 64-byte metadata entry;
	// rolled per metadata writeback. The rate is per metadata bit.
	MetaBitFlip
	// ChunkDrop leaks a machine chunk: the allocator hands it out but
	// no page records it. Rolled per chunk allocation.
	ChunkDrop
	// ChunkDup records a duplicate chunk pointer instead of a freshly
	// allocated one. Rolled per chunk allocation.
	ChunkDup
	// MDCacheMiss invalidates a resident metadata-cache entry so the
	// next lookup misses. Rolled per metadata lookup.
	MDCacheMiss
	// TraceTruncate tears a trace file mid-write: the header advertises
	// the full record count but the tail is missing. Rolled per record.
	TraceTruncate

	// NSites is the number of fault sites.
	NSites
)

var siteNames = [NSites]string{
	DataBitFlip:   "bitflip",
	MetaBitFlip:   "metaflip",
	ChunkDrop:     "chunkdrop",
	ChunkDup:      "chunkdup",
	MDCacheMiss:   "mdmiss",
	TraceTruncate: "tracetrunc",
}

// String returns the site's spec name.
func (s Site) String() string {
	if s < 0 || s >= NSites {
		return fmt.Sprintf("Site(%d)", int(s))
	}
	return siteNames[s]
}

// bitsPerOpportunity converts a per-bit rate into a per-opportunity
// probability for the bit-flip sites; event sites roll the raw rate.
func (s Site) bitsPerOpportunity() float64 {
	if s == DataBitFlip || s == MetaBitFlip {
		return 512 // one 64-byte line or packed entry
	}
	return 1
}

// Config selects fault rates. The zero value injects nothing.
type Config struct {
	// Seed drives the injector's private random stream.
	Seed uint64
	// Rate holds the per-site fault rate: probability per bit for the
	// bit-flip sites, probability per event otherwise.
	Rate [NSites]float64
}

// Enabled reports whether any site has a non-zero rate.
func (c Config) Enabled() bool {
	for _, r := range c.Rate {
		if r > 0 {
			return true
		}
	}
	return false
}

// ParseSpec parses a comma-separated injection spec such as
// "bitflip:1e-6,mdmiss:1e-4" into a Config seeded with seed.
func ParseSpec(spec string, seed uint64) (Config, error) {
	cfg := Config{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return cfg, fmt.Errorf("faults: bad spec entry %q (want site:rate)", part)
		}
		site := Site(-1)
		for s, n := range siteNames {
			if n == name {
				site = Site(s)
				break
			}
		}
		if site < 0 {
			return cfg, fmt.Errorf("faults: unknown site %q (have %s)",
				name, strings.Join(siteNames[:], ", "))
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return cfg, fmt.Errorf("faults: bad rate %q for site %s", val, name)
		}
		cfg.Rate[site] = rate
	}
	return cfg, nil
}

// SiteCount is one site's exposure and injection tally.
type SiteCount struct {
	Opportunities uint64
	Injected      uint64
}

// Totals is a snapshot of the injector's counters, embeddable in
// simulation results.
type Totals struct {
	Sites      [NSites]SiteCount
	DRAMReads  uint64
	DRAMWrites uint64
}

// Injected returns the total number of injected faults across sites.
func (t Totals) Injected() uint64 {
	var n uint64
	for _, c := range t.Sites {
		n += c.Injected
	}
	return n
}

// String renders the non-zero-exposure sites compactly.
func (t Totals) String() string {
	var parts []string
	for s, c := range t.Sites {
		if c.Opportunities == 0 && c.Injected == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %d/%d", Site(s), c.Injected, c.Opportunities))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		parts = []string{"no opportunities"}
	}
	return fmt.Sprintf("%s (dram %d reads / %d writes observed)",
		strings.Join(parts, ", "), t.DRAMReads, t.DRAMWrites)
}

// Register records per-site opportunity/injection counters and the
// DRAM exposure tallies into r under prefix (canonically "faults"):
// faults.<site>.opportunities, faults.<site>.injected,
// faults.dram_reads, faults.dram_writes.
func (t Totals) Register(r *obs.Registry, prefix string) {
	for s := Site(0); s < NSites; s++ {
		r.Counter(prefix + "." + s.String() + ".opportunities").Set(t.Sites[s].Opportunities)
		r.Counter(prefix + "." + s.String() + ".injected").Set(t.Sites[s].Injected)
	}
	r.Counter(prefix + ".dram_reads").Set(t.DRAMReads)
	r.Counter(prefix + ".dram_writes").Set(t.DRAMWrites)
}

// Injector decides, deterministically, whether each fault opportunity
// fires. All methods are safe on a nil receiver (and inject nothing),
// so callers hook it in unconditionally.
type Injector struct {
	cfg    Config
	r      *rng.Rand
	totals Totals
}

// New builds an injector from cfg, or returns nil when cfg injects
// nothing (so the disabled case is a nil receiver end to end).
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, r: rng.New(cfg.Seed ^ 0xfa017)}
}

// Enabled reports whether injection is active.
func (in *Injector) Enabled() bool { return in != nil }

// Roll records one opportunity at site and reports whether the fault
// fires. Sites with a zero rate consume no randomness, so enabling one
// site does not perturb another's decisions.
func (in *Injector) Roll(site Site) bool {
	if in == nil {
		return false
	}
	c := &in.totals.Sites[site]
	c.Opportunities++
	p := in.cfg.Rate[site] * site.bitsPerOpportunity()
	if p <= 0 {
		return false
	}
	if in.r.Float64() >= p {
		return false
	}
	c.Injected++
	return true
}

// FlipBit flips one uniformly chosen bit of buf and returns its index
// (-1 on a nil injector or empty buffer).
func (in *Injector) FlipBit(buf []byte) int {
	if in == nil || len(buf) == 0 {
		return -1
	}
	bit := in.r.Intn(len(buf) * 8)
	buf[bit/8] ^= 1 << (bit % 8)
	return bit
}

// NoteDRAM observes one DRAM access (the internal/dram hook); it only
// tallies exposure so fault rates can be read against real traffic.
func (in *Injector) NoteDRAM(lineAddr uint64, write bool) {
	if in == nil {
		return
	}
	_ = lineAddr
	if write {
		in.totals.DRAMWrites++
	} else {
		in.totals.DRAMReads++
	}
}

// Totals returns a snapshot of the counters (zero value when nil).
func (in *Injector) Totals() Totals {
	if in == nil {
		return Totals{}
	}
	return in.totals
}
