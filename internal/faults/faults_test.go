package faults

import (
	"strings"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector enabled")
	}
	for s := Site(0); s < NSites; s++ {
		if in.Roll(s) {
			t.Fatalf("nil injector fired %s", s)
		}
	}
	buf := []byte{0xaa, 0x55}
	if got := in.FlipBit(buf); got != -1 || buf[0] != 0xaa || buf[1] != 0x55 {
		t.Fatalf("nil FlipBit mutated: %d %v", got, buf)
	}
	in.NoteDRAM(7, true)
	if in.Totals() != (Totals{}) {
		t.Fatalf("nil totals %+v", in.Totals())
	}
}

func TestNewReturnsNilWhenDisabled(t *testing.T) {
	if New(Config{Seed: 3}) != nil {
		t.Fatal("zero-rate config built an injector")
	}
	var cfg Config
	cfg.Rate[MDCacheMiss] = 0.5
	if New(cfg) == nil {
		t.Fatal("non-zero rate returned nil")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("bitflip:1e-6, mdmiss:0.25", 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.Rate[DataBitFlip] != 1e-6 || cfg.Rate[MDCacheMiss] != 0.25 {
		t.Fatalf("cfg %+v", cfg)
	}
	if cfg, err := ParseSpec("", 1); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: %v %+v", err, cfg)
	}
	for _, bad := range []string{"bitflip", "nosite:0.1", "bitflip:2", "bitflip:-1", "bitflip:x"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestRollDeterministicAndCounted(t *testing.T) {
	var cfg Config
	cfg.Seed = 42
	cfg.Rate[ChunkDrop] = 0.3
	run := func() ([]bool, Totals) {
		in := New(cfg)
		var fires []bool
		for i := 0; i < 1000; i++ {
			fires = append(fires, in.Roll(ChunkDrop))
		}
		return fires, in.Totals()
	}
	a, ta := run()
	b, tb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs between identical runs", i)
		}
	}
	if ta != tb {
		t.Fatalf("totals differ: %+v vs %+v", ta, tb)
	}
	c := ta.Sites[ChunkDrop]
	if c.Opportunities != 1000 {
		t.Fatalf("opportunities %d", c.Opportunities)
	}
	if c.Injected < 200 || c.Injected > 400 {
		t.Fatalf("injected %d of 1000 at rate 0.3", c.Injected)
	}
	if ta.Injected() != c.Injected {
		t.Fatalf("Injected() %d != site tally %d", ta.Injected(), c.Injected)
	}
}

func TestZeroRateSiteConsumesNoRandomness(t *testing.T) {
	var cfg Config
	cfg.Seed = 7
	cfg.Rate[ChunkDrop] = 0.5

	in := New(cfg)
	var solo []bool
	for i := 0; i < 200; i++ {
		solo = append(solo, in.Roll(ChunkDrop))
	}
	// Interleaving rolls of a zero-rate site must not perturb the
	// enabled site's decisions.
	in = New(cfg)
	var mixed []bool
	for i := 0; i < 200; i++ {
		in.Roll(MDCacheMiss)
		mixed = append(mixed, in.Roll(ChunkDrop))
	}
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("roll %d perturbed by zero-rate site", i)
		}
	}
}

func TestPerBitRateScalesUp(t *testing.T) {
	// A 1e-4 per-bit rate on a 512-bit line is a ~5% per-write chance;
	// over 2000 writes, injections must be clearly non-zero.
	var cfg Config
	cfg.Seed = 11
	cfg.Rate[DataBitFlip] = 1e-4
	in := New(cfg)
	for i := 0; i < 2000; i++ {
		in.Roll(DataBitFlip)
	}
	inj := in.Totals().Sites[DataBitFlip].Injected
	if inj < 50 || inj > 200 {
		t.Fatalf("injected %d of 2000 at per-bit 1e-4 (expect ~100)", inj)
	}
}

func TestFlipBitMutatesOneBit(t *testing.T) {
	var cfg Config
	cfg.Rate[MetaBitFlip] = 1
	in := New(cfg)
	buf := make([]byte, 64)
	bit := in.FlipBit(buf)
	if bit < 0 || bit >= 64*8 {
		t.Fatalf("bit index %d", bit)
	}
	ones := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("%d bits set after one flip", ones)
	}
	if buf[bit/8]&(1<<(bit%8)) == 0 {
		t.Fatal("reported bit not the flipped one")
	}
	if got := in.FlipBit(nil); got != -1 {
		t.Fatalf("empty-buffer flip returned %d", got)
	}
}

func TestTotalsString(t *testing.T) {
	var cfg Config
	cfg.Rate[MDCacheMiss] = 1
	in := New(cfg)
	in.Roll(MDCacheMiss)
	in.NoteDRAM(1, false)
	in.NoteDRAM(2, true)
	s := in.Totals().String()
	for _, want := range []string{"mdmiss 1/1", "1 reads", "1 writes"} {
		if !strings.Contains(s, want) {
			t.Fatalf("totals %q missing %q", s, want)
		}
	}
	if s := (Totals{}).String(); !strings.Contains(s, "no opportunities") {
		t.Fatalf("empty totals %q", s)
	}
}

func TestSiteString(t *testing.T) {
	if DataBitFlip.String() != "bitflip" || TraceTruncate.String() != "tracetrunc" {
		t.Fatal("site names")
	}
	if !strings.HasPrefix(Site(99).String(), "Site(") {
		t.Fatal("unknown site")
	}
}
